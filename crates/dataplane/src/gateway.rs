//! Per-node gateway model (§4.2, Appendix C): the one stateful data-plane
//! component in LIFL. It performs consolidated, one-time payload processing
//! (protocol handling, deserialization, tensor-to-array conversion) before
//! writing the model update into shared memory, and the reverse on transmit.

use crate::kernel_net::KernelNetModel;
use lifl_types::{CpuCycles, SimDuration};

/// Cost model of the gateway's receive (RX) and transmit (TX) paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatewayModel {
    /// Kernel path used to reach the gateway from a remote client or gateway.
    pub kernel: KernelNetModel,
    /// Payload-transformation latency per mebibyte (deserialize + convert + shm write), seconds.
    pub transform_latency_per_mib: f64,
    /// Payload-transformation CPU cycles per mebibyte.
    pub transform_cycles_per_mib: f64,
    /// Idle CPU share of the gateway per node, in cores (the stateful "tax", Appendix F.1).
    pub idle_cores: f64,
    /// Resident memory of the gateway, bytes.
    pub resident_memory_bytes: u64,
}

impl Default for GatewayModel {
    fn default() -> Self {
        GatewayModel {
            kernel: KernelNetModel::default(),
            transform_latency_per_mib: 0.0022,
            transform_cycles_per_mib: 8.0e6,
            idle_cores: 0.03,
            resident_memory_bytes: 48 * 1024 * 1024,
        }
    }
}

impl GatewayModel {
    /// RX path: kernel receive + one-time payload transform + shm write.
    pub fn rx_latency(&self, bytes: u64) -> SimDuration {
        let mib = bytes as f64 / (1024.0 * 1024.0);
        self.kernel.latency(bytes) + SimDuration::from_secs(self.transform_latency_per_mib * mib)
    }

    /// TX path: shm read + payload transform + kernel send.
    pub fn tx_latency(&self, bytes: u64) -> SimDuration {
        self.rx_latency(bytes)
    }

    /// CPU of one RX traversal.
    pub fn rx_cpu(&self, bytes: u64) -> CpuCycles {
        let mib = bytes as f64 / (1024.0 * 1024.0);
        CpuCycles(self.kernel.cpu(bytes).0 + self.transform_cycles_per_mib * mib)
    }

    /// CPU of one TX traversal.
    pub fn tx_cpu(&self, bytes: u64) -> CpuCycles {
        self.rx_cpu(bytes)
    }

    /// Bytes buffered while the gateway holds the update (one shared-memory copy).
    pub fn buffered_bytes(&self, bytes: u64) -> u64 {
        bytes
    }

    /// Idle CPU time over a wall-clock interval (the stateful "tax").
    pub fn idle_cpu_time(&self, wall: SimDuration) -> SimDuration {
        wall.scaled(self.idle_cores)
    }

    /// Number of gateway cores needed to sustain `arrivals_per_sec` updates of
    /// `bytes` each — LIFL scales the gateway vertically with load (§4.2).
    pub fn cores_needed(&self, arrivals_per_sec: f64, bytes: u64) -> u32 {
        let per_update = self.rx_latency(bytes).as_secs();
        (arrivals_per_sec * per_update).ceil().max(1.0) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gateway_tax_is_smaller_than_broker_plus_sidecar() {
        use crate::{broker::BrokerModel, sidecar::ContainerSidecarModel};
        let gw = GatewayModel::default();
        let combined =
            BrokerModel::default().idle_cores + ContainerSidecarModel::default().idle_cores;
        assert!(gw.idle_cores < combined);
        assert!(
            gw.resident_memory_bytes
                < BrokerModel::default().resident_memory_bytes
                    + ContainerSidecarModel::default().resident_memory_bytes
        );
    }

    #[test]
    fn vertical_scaling_grows_with_load() {
        let gw = GatewayModel::default();
        let small = gw.cores_needed(0.5, 44 * 1024 * 1024);
        let large = gw.cores_needed(20.0, 232 * 1024 * 1024);
        assert!(small >= 1);
        assert!(large > small);
    }

    #[test]
    fn rx_and_tx_are_symmetric() {
        let gw = GatewayModel::default();
        let b = 83 * 1024 * 1024;
        assert_eq!(gw.rx_latency(b), gw.tx_latency(b));
        assert_eq!(gw.rx_cpu(b).0, gw.tx_cpu(b).0);
        assert_eq!(gw.buffered_bytes(b), b);
    }
}
