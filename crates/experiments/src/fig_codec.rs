//! Codec ablation: bytes-on-wire and time-to-accuracy across update codecs.
//!
//! Sweeps the update codec (`identity`, `uniform8`, `uniform4`, `topk50`)
//! against the three transport substrates (LIFL shared memory, serverful
//! gRPC, serverless broker/sidecar) on the default heavy workload —
//! 60 simultaneous ResNet-152 updates, the Fig. 8 high-load point — and pairs
//! that with an algorithm-level time-to-accuracy run where every client
//! update actually travels through the codec (with per-client error
//! feedback). Together the two sweeps expose the trade-off the codec
//! subsystem exists for: quantization cuts wire bytes ~4–8x and shortens
//! rounds, at a small accuracy cost that error feedback keeps bounded.

use crate::report::format_table;
use lifl_baselines::no_hierarchy_profile;
use lifl_core::platform::{LiflPlatform, PlatformProfile, RoundSpec};
use lifl_fl::client::ClientAvailability;
use lifl_fl::dataset::{DatasetConfig, FederatedDataset};
use lifl_fl::population::{Population, PopulationConfig};
use lifl_fl::rounds::{FlDriver, FlDriverConfig};
use lifl_fl::trainer::TrainerConfig;
use lifl_simcore::SimRng;
use lifl_types::{ClusterConfig, CodecKind, LiflConfig, ModelKind, SimTime};
use serde::Serialize;

/// Updates in the default workload round (the Fig. 8 high-load point).
const ROUND_UPDATES: usize = 60;
/// The default workload model.
const MODEL: ModelKind = ModelKind::ResNet152;

/// One (codec, transport) cell of the system-level sweep.
#[derive(Debug, Clone, Serialize)]
pub struct CodecTransportRow {
    /// Codec label.
    pub codec: String,
    /// Transport / system label.
    pub transport: String,
    /// Bytes that crossed node boundaries during the round.
    pub wire_bytes: u64,
    /// Wire-byte reduction versus `identity` on the same transport.
    pub bytes_reduction: f64,
    /// Aggregation completion time in seconds.
    pub act_seconds: f64,
    /// Aggregation-service CPU seconds (includes codec passes).
    pub cpu_seconds: f64,
}

/// One codec of the algorithm-level time-to-accuracy sweep.
#[derive(Debug, Clone, Serialize)]
pub struct CodecTtaRow {
    /// Codec label.
    pub codec: String,
    /// Rounds until the target accuracy was reached (None = never).
    pub rounds_to_target: Option<usize>,
    /// Simulated seconds per round on the LIFL transport with this codec.
    pub seconds_per_round: f64,
    /// Wall-clock seconds to the target accuracy (rounds x round time).
    pub time_to_target_s: Option<f64>,
    /// Accuracy after the full run.
    pub final_accuracy: f64,
}

/// One shard count of the sharded-fold sweep (LIFL transport, `uniform8`).
#[derive(Debug, Clone, Serialize)]
pub struct ShardRow {
    /// Configured `aggregation_shards`.
    pub shards: u32,
    /// Aggregation completion time in seconds.
    pub act_seconds: f64,
    /// Speedup versus the sequential (1-shard) fold.
    pub speedup: f64,
}

/// The full codec-ablation result.
#[derive(Debug, Clone, Serialize)]
pub struct FigCodecResult {
    /// Codec x transport sweep on the default workload.
    pub transport_rows: Vec<CodecTransportRow>,
    /// Sharded-fold sweep on the LIFL transport under `uniform8`.
    pub shard_rows: Vec<ShardRow>,
    /// Time-to-accuracy sweep on the LIFL transport.
    pub tta_rows: Vec<CodecTtaRow>,
    /// Headline: wire-byte reduction of `uniform8` vs `identity` on LIFL.
    pub uniform8_reduction: f64,
    /// Target accuracy the TTA rows report against.
    pub target_accuracy: f64,
}

fn transport_profiles(cluster: &ClusterConfig) -> Vec<(String, PlatformProfile)> {
    vec![
        (
            "LIFL/shm".to_string(),
            PlatformProfile::lifl(cluster.clone(), &LiflConfig::default()),
        ),
        (
            "SF/gRPC".to_string(),
            PlatformProfile::serverful(cluster.clone()),
        ),
        (
            "SL/broker".to_string(),
            PlatformProfile::serverless(cluster.clone()),
        ),
        ("NH/gRPC".to_string(), no_hierarchy_profile(cluster.clone())),
    ]
}

fn tta_driver(codec: CodecKind, rounds: usize) -> (FlDriver, SimRng) {
    let mut rng = SimRng::from_seed(0xF16C0DEC);
    let dataset = FederatedDataset::generate(
        DatasetConfig {
            num_clients: 30,
            num_features: 12,
            num_classes: 6,
            mean_samples_per_client: 40,
            dirichlet_alpha: 0.5,
            test_samples: 300,
            noise_std: 0.4,
        },
        &mut rng,
    );
    let population = Population::generate(
        PopulationConfig {
            total_clients: 30,
            active_per_round: 10,
            availability: ClientAvailability::AlwaysOn,
            mean_samples: 40,
            speed_spread: 0.3,
        },
        &mut rng,
    );
    let driver = FlDriver::new(
        dataset,
        population,
        FlDriverConfig {
            trainer: TrainerConfig {
                batch_size: 16,
                learning_rate: 0.05,
                local_epochs: 2,
            },
            rounds,
            eval_every: 1,
            codec,
        },
    );
    (driver, rng)
}

/// Runs the codec x transport sweep and the time-to-accuracy sweep.
pub fn run() -> FigCodecResult {
    let cluster = ClusterConfig::default();
    let spec = RoundSpec::simultaneous(MODEL, ROUND_UPDATES, SimTime::ZERO);

    // --- System level: codec x transport on the default workload. ---
    let mut transport_rows = Vec::new();
    let mut uniform8_reduction = 0.0;
    for (transport, profile) in transport_profiles(&cluster) {
        let mut identity_bytes = 0u64;
        for codec in CodecKind::ablation_set() {
            let mut platform = LiflPlatform::with_profile(profile.clone().with_codec(codec));
            let report = platform.run_round(&spec);
            let wire_bytes = report.metrics.inter_node_bytes;
            if codec == CodecKind::Identity {
                identity_bytes = wire_bytes;
            }
            let bytes_reduction = identity_bytes as f64 / wire_bytes.max(1) as f64;
            if codec == CodecKind::Uniform8 && transport == "LIFL/shm" {
                uniform8_reduction = bytes_reduction;
            }
            transport_rows.push(CodecTransportRow {
                codec: codec.label(),
                transport: transport.clone(),
                wire_bytes,
                bytes_reduction,
                act_seconds: report.metrics.aggregation_completion_time.as_secs(),
                cpu_seconds: report.metrics.cpu_time.as_secs(),
            });
        }
    }

    // --- System level: sharded fold sweep (uniform8 on LIFL). ---
    let mut shard_rows = Vec::new();
    let mut sequential_act = 0.0;
    for shards in [1u32, 2, 4, 8, 16] {
        let config = LiflConfig {
            codec: CodecKind::Uniform8,
            aggregation_shards: shards,
            ..LiflConfig::default()
        };
        let mut platform = LiflPlatform::new(cluster.clone(), config);
        let act = platform
            .run_round(&spec)
            .metrics
            .aggregation_completion_time
            .as_secs();
        if shards == 1 {
            sequential_act = act;
        }
        shard_rows.push(ShardRow {
            shards,
            act_seconds: act,
            speedup: sequential_act / act.max(f64::EPSILON),
        });
    }

    // --- Algorithm level: time-to-accuracy through each codec. ---
    let rounds = 20;
    // Target the paper-style "both reach it" level: a band the Identity run
    // comfortably crosses so quantized runs can be compared against it.
    let (mut probe, mut probe_rng) = tta_driver(CodecKind::Identity, rounds);
    probe.run_all(&mut probe_rng);
    let identity_final = probe.evaluate();
    let target_accuracy = (identity_final - 8.0).max(30.0);

    let mut tta_rows = Vec::new();
    for codec in CodecKind::ablation_set() {
        let mut platform = LiflPlatform::with_profile(
            PlatformProfile::lifl(cluster.clone(), &LiflConfig::default()).with_codec(codec),
        );
        let seconds_per_round = platform
            .run_round(&spec)
            .metrics
            .aggregation_completion_time
            .as_secs();
        let (mut driver, mut rng) = tta_driver(codec, rounds);
        driver.run_all(&mut rng);
        let rounds_to_target = driver
            .accuracy_curve()
            .iter()
            .find(|(_, acc)| *acc >= target_accuracy)
            .map(|(round, _)| *round);
        tta_rows.push(CodecTtaRow {
            codec: codec.label(),
            rounds_to_target,
            seconds_per_round,
            time_to_target_s: rounds_to_target.map(|r| r as f64 * seconds_per_round),
            final_accuracy: driver.evaluate(),
        });
    }

    FigCodecResult {
        transport_rows,
        shard_rows,
        tta_rows,
        uniform8_reduction,
        target_accuracy,
    }
}

/// Formats the result as two tables.
pub fn format(result: &FigCodecResult) -> String {
    let transport: Vec<Vec<String>> = result
        .transport_rows
        .iter()
        .map(|r| {
            vec![
                r.transport.clone(),
                r.codec.clone(),
                format!("{:.1}", r.wire_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.2}x", r.bytes_reduction),
                format!("{:.1}", r.act_seconds),
                format!("{:.1}", r.cpu_seconds),
            ]
        })
        .collect();
    let mut out = format!(
        "Codec ablation: {} simultaneous {} updates\n",
        ROUND_UPDATES, MODEL,
    );
    out.push_str(&format_table(
        &[
            "transport",
            "codec",
            "wire (MiB)",
            "reduction",
            "ACT (s)",
            "CPU (s)",
        ],
        &transport,
    ));
    out.push_str(&format!(
        "\nHeadline: uniform8 moves {:.2}x fewer bytes than identity on LIFL\n\n",
        result.uniform8_reduction
    ));
    let shard: Vec<Vec<String>> = result
        .shard_rows
        .iter()
        .map(|r| {
            vec![
                r.shards.to_string(),
                format!("{:.1}", r.act_seconds),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    out.push_str("Sharded fold sweep (uniform8, LIFL transport)\n");
    out.push_str(&format_table(&["shards", "ACT (s)", "speedup"], &shard));
    out.push('\n');
    let tta: Vec<Vec<String>> = result
        .tta_rows
        .iter()
        .map(|r| {
            vec![
                r.codec.clone(),
                r.rounds_to_target
                    .map(|v| v.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                format!("{:.1}", r.seconds_per_round),
                r.time_to_target_s
                    .map(|v| format!("{v:.0}"))
                    .unwrap_or_else(|| "-".to_string()),
                format!("{:.1}%", r.final_accuracy),
            ]
        })
        .collect();
    out.push_str(&format!(
        "Time to {:.0}% accuracy through each codec (LIFL transport)\n",
        result.target_accuracy
    ));
    out.push_str(&format_table(
        &["codec", "rounds", "s/round", "TTA (s)", "final acc"],
        &tta,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform8_cuts_wire_bytes_at_least_4x() {
        let result = run();
        assert!(
            result.uniform8_reduction >= 4.0,
            "uniform8 reduction only {:.2}x",
            result.uniform8_reduction
        );
        // 4 transports x 4 codecs.
        assert_eq!(result.transport_rows.len(), 16);
        // Within every transport, stronger codecs strictly shrink the wire.
        for chunk in result.transport_rows.chunks(4) {
            for pair in chunk.windows(2) {
                assert!(
                    pair[0].wire_bytes > pair[1].wire_bytes,
                    "{}: {} !> {}",
                    pair[0].transport,
                    pair[0].wire_bytes,
                    pair[1].wire_bytes
                );
            }
        }
    }

    #[test]
    fn shard_sweep_speeds_up_monotonically() {
        let result = run();
        assert_eq!(result.shard_rows.len(), 5);
        assert_eq!(result.shard_rows[0].shards, 1);
        assert!((result.shard_rows[0].speedup - 1.0).abs() < 1e-9);
        for pair in result.shard_rows.windows(2) {
            assert!(
                pair[1].act_seconds <= pair[0].act_seconds,
                "{} shards slower than {}",
                pair[1].shards,
                pair[0].shards
            );
        }
        let at4 = &result.shard_rows[2];
        assert!(at4.speedup > 1.0, "4 shards gave {}x", at4.speedup);
    }

    #[test]
    fn quantized_rounds_are_not_slower_on_hierarchical_transports() {
        let result = run();
        for chunk in result.transport_rows.chunks(4) {
            // The flat no-hierarchy baseline serialises every fold through
            // one aggregator, so it is compute-bound and the per-update
            // decode pass can outweigh the transfer savings there — which is
            // itself part of the ablation's story.
            if chunk[0].transport.starts_with("NH") {
                continue;
            }
            let identity = &chunk[0];
            for row in &chunk[1..] {
                assert!(
                    row.act_seconds <= identity.act_seconds + 1e-9,
                    "{} {} slower than identity",
                    row.transport,
                    row.codec
                );
            }
        }
    }

    #[test]
    fn every_codec_still_reaches_the_target() {
        let result = run();
        assert_eq!(result.tta_rows.len(), 4);
        for row in &result.tta_rows {
            assert!(
                row.rounds_to_target.is_some(),
                "{} never reached {:.0}%",
                row.codec,
                result.target_accuracy
            );
        }
        // Quantized rounds are faster, so uniform8 TTA beats identity.
        let identity = result.tta_rows[0].time_to_target_s.unwrap();
        let uniform8 = result.tta_rows[1].time_to_target_s.unwrap();
        assert!(
            uniform8 < identity * 1.5,
            "uniform8 TTA {uniform8:.0}s vs identity {identity:.0}s"
        );
        let text = format(&result);
        assert!(text.contains("uniform8"));
        assert!(text.contains("TTA"));
    }
}
