//! Simulated resources: CPU-core pools and shared (contended) channels.

use lifl_types::{SimDuration, SimTime};

/// A pool of identical CPU cores on one worker node.
///
/// Work items are assigned to the earliest-available core (no preemption),
/// which is the behaviour the paper's aggregators exhibit: each aggregation
/// task occupies a core for its execution time.
#[derive(Debug, Clone)]
pub struct CpuPool {
    core_free_at: Vec<SimTime>,
    busy: SimDuration,
    clock_ghz: f64,
}

impl CpuPool {
    /// Creates a pool of `cores` cores with the given clock rate in GHz.
    ///
    /// # Panics
    /// Panics if `cores` is zero.
    pub fn new(cores: usize, clock_ghz: f64) -> Self {
        assert!(cores > 0, "a CPU pool needs at least one core");
        CpuPool {
            core_free_at: vec![SimTime::ZERO; cores],
            busy: SimDuration::ZERO,
            clock_ghz,
        }
    }

    /// Number of cores in the pool.
    pub fn cores(&self) -> usize {
        self.core_free_at.len()
    }

    /// Clock rate in GHz.
    pub fn clock_ghz(&self) -> f64 {
        self.clock_ghz
    }

    /// Schedules a task that becomes ready at `ready` and requires `work` of
    /// CPU time. Returns `(start, finish)`.
    pub fn schedule(&mut self, ready: SimTime, work: SimDuration) -> (SimTime, SimTime) {
        let (idx, free_at) = self
            .core_free_at
            .iter()
            .copied()
            .enumerate()
            .min_by_key(|(_, t)| *t)
            .expect("pool has at least one core");
        let start = ready.max(free_at);
        let finish = start + work;
        self.core_free_at[idx] = finish;
        self.busy += work;
        (start, finish)
    }

    /// Total busy CPU time scheduled so far.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// The earliest time at which any core is free.
    pub fn earliest_free(&self) -> SimTime {
        self.core_free_at
            .iter()
            .copied()
            .min()
            .unwrap_or(SimTime::ZERO)
    }

    /// Resets the pool to an idle state, forgetting accumulated busy time.
    pub fn reset(&mut self) {
        for t in &mut self.core_free_at {
            *t = SimTime::ZERO;
        }
        self.busy = SimDuration::ZERO;
    }
}

/// A shared, serialising channel such as a node's kernel network path or NIC.
///
/// Transfers queue FIFO behind each other, which reproduces the contention the
/// paper observes when leaf aggregators on one node exchange intermediate
/// updates with the top aggregator over kernel networking (§4.1, Fig. 4).
#[derive(Debug, Clone)]
pub struct SharedChannel {
    free_at: SimTime,
    transferred_bytes: u64,
    busy: SimDuration,
}

impl Default for SharedChannel {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedChannel {
    /// Creates an idle channel.
    pub fn new() -> Self {
        SharedChannel {
            free_at: SimTime::ZERO,
            transferred_bytes: 0,
            busy: SimDuration::ZERO,
        }
    }

    /// Schedules a transfer of `bytes` that becomes ready at `ready` and takes
    /// `duration` of channel time. Returns `(start, finish)`.
    pub fn transfer(
        &mut self,
        ready: SimTime,
        duration: SimDuration,
        bytes: u64,
    ) -> (SimTime, SimTime) {
        let start = ready.max(self.free_at);
        let finish = start + duration;
        self.free_at = finish;
        self.transferred_bytes += bytes;
        self.busy += duration;
        (start, finish)
    }

    /// Total bytes moved through the channel.
    pub fn transferred_bytes(&self) -> u64 {
        self.transferred_bytes
    }

    /// Total time the channel was busy.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// The time at which the channel next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_pool_parallelism() {
        let mut pool = CpuPool::new(2, 2.8);
        let w = SimDuration::from_secs(10.0);
        let (_, f1) = pool.schedule(SimTime::ZERO, w);
        let (_, f2) = pool.schedule(SimTime::ZERO, w);
        let (_, f3) = pool.schedule(SimTime::ZERO, w);
        // Two tasks run in parallel; the third queues behind the first free core.
        assert_eq!(f1.as_secs(), 10.0);
        assert_eq!(f2.as_secs(), 10.0);
        assert_eq!(f3.as_secs(), 20.0);
        assert_eq!(pool.busy_time().as_secs(), 30.0);
    }

    #[test]
    fn cpu_pool_respects_ready_time() {
        let mut pool = CpuPool::new(1, 2.8);
        let (s, f) = pool.schedule(SimTime::from_secs(5.0), SimDuration::from_secs(1.0));
        assert_eq!(s.as_secs(), 5.0);
        assert_eq!(f.as_secs(), 6.0);
        pool.reset();
        assert_eq!(pool.busy_time(), SimDuration::ZERO);
        assert_eq!(pool.earliest_free(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_pool_panics() {
        let _ = CpuPool::new(0, 2.8);
    }

    #[test]
    fn shared_channel_serialises() {
        let mut ch = SharedChannel::new();
        let d = SimDuration::from_secs(4.0);
        let (_, f1) = ch.transfer(SimTime::ZERO, d, 100);
        let (s2, f2) = ch.transfer(SimTime::ZERO, d, 100);
        assert_eq!(f1.as_secs(), 4.0);
        assert_eq!(s2.as_secs(), 4.0);
        assert_eq!(f2.as_secs(), 8.0);
        assert_eq!(ch.transferred_bytes(), 200);
        assert_eq!(ch.busy_time().as_secs(), 8.0);
    }
}
