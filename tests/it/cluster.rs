//! The cluster-federation tier: N sessions composed gateway-to-gateway over
//! `Update::RemoteBytes` are **bit-exact** with the equivalent single-session
//! `drive()` — for every codec, for the sequential and the sharded fold —
//! and the hops are priced off the codec-encoded bytes.

use lifl_core::cluster::ClusterBuilder;
use lifl_core::session::{SessionBuilder, Update};
use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::codec::UpdateCodec;
use lifl_fl::DenseModel;
use lifl_types::{ClientId, CodecKind, Topology};

fn updates(n: usize, dim: usize) -> Vec<ModelUpdate> {
    (0..n)
        .map(|i| {
            let values: Vec<f32> = (0..dim)
                .map(|d| ((i * dim + d * 7) % 127) as f32 * 0.013 - 0.8)
                .collect();
            ModelUpdate::from_client(
                ClientId::new(i as u64),
                DenseModel::from_vec(values),
                (i % 5 + 1) as u64,
            )
        })
        .collect()
}

/// Acceptance: a 3-level cluster round over `Update::RemoteBytes` reproduces
/// the single-session drive bit-for-bit under every `CodecKind`, with both
/// the sequential (1) and the sharded (4) fold.
#[test]
fn three_level_cluster_bit_exact_with_single_session_for_all_codecs_and_shards() {
    // 3 nodes, each driving a [2, 2] subtree: 12 updates per round.
    let topology = Topology::new(vec![2, 2, 3]).expect("topology");
    let batch = updates(topology.total_updates(), 192);
    for codec in CodecKind::ablation_set() {
        for shards in [1usize, 4] {
            let mut session = SessionBuilder::new()
                .topology(topology.clone())
                .codec(codec)
                .shards(shards)
                .build()
                .expect("session");
            session
                .ingest_all(batch.iter().cloned().map(Update::Dense))
                .expect("session ingest");
            let single = session.drive().expect("session drive");

            let mut cluster = ClusterBuilder::new()
                .topology(topology.clone())
                .codec(codec)
                .shards(shards)
                .build()
                .expect("cluster");
            cluster
                .ingest_all(batch.iter().cloned().map(Update::Dense))
                .expect("cluster ingest");
            let federated = cluster.drive().expect("cluster drive");

            assert_eq!(
                single.update.samples, federated.update.samples,
                "{codec}/{shards}"
            );
            for (a, b) in single
                .update
                .model
                .as_slice()
                .iter()
                .zip(federated.update.model.as_slice())
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{codec}/{shards} shards: cluster diverged ({a} vs {b})"
                );
            }
        }
    }
}

/// The equivalence survives rounds: error-feedback residuals at the cluster
/// ingress evolve exactly like a single session's, so *later* rounds stay
/// bit-exact too (the residual state is path-dependent).
#[test]
fn multi_round_lossy_cluster_stays_bit_exact() {
    let topology = Topology::new(vec![2, 2, 2]).expect("topology");
    let batch = updates(topology.total_updates(), 96);
    let mut session = SessionBuilder::new()
        .topology(topology.clone())
        .codec(CodecKind::Uniform8)
        .build()
        .expect("session");
    let mut cluster = ClusterBuilder::new()
        .topology(topology.clone())
        .codec(CodecKind::Uniform8)
        .build()
        .expect("cluster");
    for round in 0..3 {
        session
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .expect("session ingest");
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .expect("cluster ingest");
        let single = session.drive().expect("session drive");
        let federated = cluster.drive().expect("cluster drive");
        for (a, b) in single
            .update
            .model
            .as_slice()
            .iter()
            .zip(federated.update.model.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "round {round} diverged");
        }
    }
}

/// Deep federations: a 4-level global tree split across 2 nodes (each node
/// drives a 3-level subtree in process) still matches the single session.
#[test]
fn four_level_cluster_matches_single_session() {
    let topology = Topology::uniform(4, 2);
    let batch = updates(topology.total_updates(), 64);
    let mut session = SessionBuilder::new()
        .topology(topology.clone())
        .codec(CodecKind::Uniform4)
        .build()
        .expect("session");
    session
        .ingest_all(batch.iter().cloned().map(Update::Dense))
        .expect("ingest");
    let single = session.drive().expect("drive");

    let mut cluster = ClusterBuilder::new()
        .topology(topology)
        .codec(CodecKind::Uniform4)
        .build()
        .expect("cluster");
    assert_eq!(cluster.nodes(), 2);
    assert_eq!(cluster.subtree().levels(), 3);
    cluster
        .ingest_all(batch.iter().cloned().map(Update::Dense))
        .expect("ingest");
    let federated = cluster.drive().expect("drive");
    for (a, b) in single
        .update
        .model
        .as_slice()
        .iter()
        .zip(federated.update.model.as_slice())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "4-level cluster diverged");
    }
}

/// Mixed representations route through the cluster ingress exactly like a
/// single session: dense, pre-encoded and forwarded remote bytes share one
/// round, bit-exactly under `Identity`.
#[test]
fn mixed_representations_cluster_bit_exact_under_identity() {
    let topology = Topology::new(vec![2, 1, 2]).expect("topology");
    let batch = updates(topology.total_updates(), 48);
    let ingests = || {
        let mut codec = UpdateCodec::new(CodecKind::Identity);
        batch
            .iter()
            .enumerate()
            .map(|(i, update)| match i % 3 {
                0 => Update::Dense(update.clone()),
                1 => Update::encoded(
                    ClientId::new(i as u64),
                    codec.encode(&update.model),
                    update.samples,
                ),
                _ => {
                    let raw: Vec<u8> = update
                        .model
                        .as_slice()
                        .iter()
                        .flat_map(|v| v.to_le_bytes())
                        .collect();
                    Update::remote_bytes(raw, update.samples, false)
                }
            })
            .collect::<Vec<_>>()
    };
    let mut session = SessionBuilder::new()
        .topology(topology.clone())
        .build()
        .expect("session");
    session.ingest_all(ingests()).expect("ingest");
    let single = session.drive().expect("drive");
    let mut cluster = ClusterBuilder::new()
        .topology(topology)
        .build()
        .expect("cluster");
    cluster.ingest_all(ingests()).expect("ingest");
    let federated = cluster.drive().expect("drive");
    assert_eq!(single.update.samples, federated.update.samples);
    for (a, b) in single
        .update
        .model
        .as_slice()
        .iter()
        .zip(federated.update.model.as_slice())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "mixed cluster diverged");
    }
}

/// Hop accounting: the wire bytes a cluster round crosses machines with are
/// exactly the codec-encoded intermediate size per remote node, and the
/// priced latency orders Identity > Uniform8 > Uniform4.
#[test]
fn hop_pricing_follows_the_codec() {
    let topology = Topology::new(vec![2, 2, 4]).expect("topology");
    let dim = 512usize;
    let batch = updates(topology.total_updates(), dim);
    let run = |codec: CodecKind| {
        let mut cluster = ClusterBuilder::new()
            .topology(topology.clone())
            .codec(codec)
            .build()
            .expect("cluster");
        cluster
            .ingest_all(batch.iter().cloned().map(Update::Dense))
            .expect("ingest");
        cluster.drive().expect("drive")
    };
    let identity = run(CodecKind::Identity);
    let u8c = run(CodecKind::Uniform8);
    let u4c = run(CodecKind::Uniform4);
    // 3 remote nodes x the encoded intermediate size.
    assert_eq!(identity.inter_node_wire_bytes(), 3 * dim as u64 * 4);
    assert_eq!(u8c.inter_node_wire_bytes(), 3 * dim as u64);
    assert_eq!(u4c.inter_node_wire_bytes(), 3 * (dim as u64).div_ceil(2));
    assert!(identity.serialized_hop_latency() > u8c.serialized_hop_latency());
    assert!(u8c.serialized_hop_latency() > u4c.serialized_hop_latency());
}
