//! The backend-generic multi-round FL training driver: one training loop
//! that runs over any [`Ingest`] aggregation backend — a single-process
//! [`Session`](crate::session::Session) tree or a multi-node federated
//! [`Cluster`] — with identical results.
//!
//! The algorithm-level [`FlDriver`](lifl_fl::FlDriver) folds client updates
//! through a flat in-loop accumulator; this driver instead pushes every
//! locally trained update through the backend's polymorphic ingress
//! ([`Ingest::ingest_update`]) and lets the backend aggregate the round over
//! its tree — stores, codecs, per-client error feedback and (for a cluster)
//! priced inter-node hops all engaged. Because both backends apply the same
//! ingress rules with the same seeds, the driver's loss/accuracy curve is
//! **bit-exact** across backends for every [`CodecKind`] × shard count
//! (enforced by the `tests/it/driver.rs` tier), and matches the flat
//! [`FlDriver`](lifl_fl::FlDriver) under a lossless codec.

use crate::cluster::Cluster;
use crate::heartbeat::{over_provisioned_selection, HeartbeatMonitor};
use lifl_fl::dataset::FederatedDataset;
use lifl_fl::metrics::accuracy_percent;
use lifl_fl::model::DenseModel;
use lifl_fl::population::Population;
use lifl_fl::trainer::{LocalTrainer, TrainerConfig};
use lifl_fl::{Ingest, Update};
use lifl_simcore::SimRng;
use lifl_types::{ClientId, CodecKind, LiflError, Result, SimDuration, SimTime};
use std::collections::BTreeSet;

/// Configuration of the backend-generic training driver.
///
/// The wire codec is *not* configured here: it is a property of the backend
/// (set when the session or cluster was built) and is reported through
/// [`Ingest::ingress_codec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// Local-training configuration.
    pub trainer: TrainerConfig,
    /// Number of rounds [`TrainingDriver::run_all`] runs.
    pub rounds: usize,
    /// Evaluate accuracy every this many rounds (1 = every round).
    pub eval_every: usize,
    /// Expected fraction of selected clients that drop out mid-round (§3
    /// over-provisioning). At the default `0.0` every round must *exactly*
    /// fill the backend tree, as before. A positive rate relaxes that check:
    /// the selection should be over-provisioned per
    /// [`over_provisioned_selection`], stragglers are cut off at
    /// [`TrainingConfig::straggler_timeout`], and surplus deliveries beyond
    /// the tree stay idle as spares.
    pub expected_dropout: f64,
    /// How long the round waits for a selected client before cutting it off
    /// as a straggler (only consulted when `expected_dropout > 0`).
    pub straggler_timeout: SimDuration,
    /// Routes every delivery through the backend's streaming ingress
    /// ([`Ingest::try_ingest`]) instead of the strict one: the round trains
    /// *every* selected participant, surplus deliveries park in the
    /// backend's bounded admission queues (counted in
    /// [`TrainingRound::queued`], drained into the next round by the
    /// backend) and deliveries the queue budget turns away are cut off as
    /// stragglers. The round closes by the backend's configured rule —
    /// exact fill, or a quorum under
    /// [`RoundClose::Quorum`](lifl_types::RoundClose) — so the selection no
    /// longer has to match [`Ingest::round_capacity`] exactly.
    pub streaming: bool,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            trainer: TrainerConfig::default(),
            rounds: 50,
            eval_every: 1,
            expected_dropout: 0.0,
            straggler_timeout: SimDuration::from_secs(60.0),
            streaming: false,
        }
    }
}

/// The outcome of one driven round.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingRound {
    /// Round index (starting at 1).
    pub round: usize,
    /// Client updates the backend aggregated.
    pub updates: u64,
    /// Test accuracy after the round, if evaluated.
    pub accuracy: Option<f64>,
    /// Average local training loss reported by the participating clients.
    pub train_loss: f64,
    /// Data-plane payload bytes the round's ingests occupied in wire form.
    pub ingress_wire_bytes: u64,
    /// Selected clients cut off as stragglers at the round's timeout
    /// (always zero under the exact-fill default configuration).
    pub dropped: u64,
    /// Deliveries the backend parked in its bounded admission queues for
    /// the *next* round (always zero outside
    /// [`TrainingConfig::streaming`] mode).
    pub queued: u64,
}

/// Runs synchronous multi-round FedAvg over any [`Ingest`] backend.
///
/// ```
/// use lifl_core::session::SessionBuilder;
/// use lifl_core::training::{TrainingConfig, TrainingDriver};
/// use lifl_fl::client::ClientAvailability;
/// use lifl_fl::dataset::{DatasetConfig, FederatedDataset};
/// use lifl_fl::population::{Population, PopulationConfig};
/// use lifl_simcore::SimRng;
/// use lifl_types::Topology;
///
/// let mut rng = SimRng::from_seed(7);
/// let dataset = FederatedDataset::generate(
///     DatasetConfig {
///         num_clients: 16,
///         num_features: 8,
///         num_classes: 4,
///         mean_samples_per_client: 20,
///         dirichlet_alpha: 0.5,
///         test_samples: 80,
///         noise_std: 0.4,
///     },
///     &mut rng,
/// );
/// let population = Population::generate(
///     PopulationConfig {
///         total_clients: 16,
///         active_per_round: 8,
///         availability: ClientAvailability::AlwaysOn,
///         mean_samples: 20,
///         speed_spread: 0.3,
///     },
///     &mut rng,
/// );
/// // An 8-update session tree: each round's 8 participants fill it exactly.
/// let session = SessionBuilder::new()
///     .topology(Topology::new(vec![4, 2]).unwrap())
///     .build()
///     .unwrap();
/// let mut driver =
///     TrainingDriver::new(session, dataset, population, TrainingConfig::default());
/// let outcome = driver.run_round(&mut rng).unwrap();
/// assert_eq!(outcome.round, 1);
/// assert_eq!(outcome.updates, 8);
/// ```
#[derive(Debug)]
pub struct TrainingDriver<B: Ingest> {
    backend: B,
    dataset: FederatedDataset,
    population: Population,
    trainer: LocalTrainer,
    config: TrainingConfig,
    global: DenseModel,
    history: Vec<TrainingRound>,
    stragglers: BTreeSet<ClientId>,
}

impl<B: Ingest> TrainingDriver<B> {
    /// Creates a driver over `backend` with a zero-initialised global model.
    ///
    /// The population's `active_per_round` must equal the backend's
    /// [`Ingest::round_capacity`] for rounds to drive (checked per round, so
    /// availability dynamics that under-select surface as errors, not
    /// silently skewed aggregates).
    pub fn new(
        backend: B,
        dataset: FederatedDataset,
        population: Population,
        config: TrainingConfig,
    ) -> Self {
        let trainer = LocalTrainer::new(dataset.num_features, dataset.num_classes, config.trainer);
        let global = dataset.initial_model();
        TrainingDriver {
            backend,
            dataset,
            population,
            trainer,
            config,
            global,
            history: Vec::new(),
            stragglers: BTreeSet::new(),
        }
    }

    /// Marks a client as a straggler for the *next* round (a fault-injection
    /// hook): if selected, it trains nothing and never reports, so the round
    /// must absorb its absence — over-provisioned configurations cut it off
    /// at the straggler timeout; the exact-fill default fails the round.
    /// Marks are consumed by the next round attempt.
    pub fn mark_straggler(&mut self, client: ClientId) {
        self.stragglers.insert(client);
    }

    /// The aggregation backend the driver ingests into.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the backend (e.g. to feed a cluster's placement
    /// policy out-of-band load observations between rounds).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The wire codec the backend applies at its ingress.
    pub fn codec(&self) -> CodecKind {
        self.backend.ingress_codec()
    }

    /// The current global model.
    pub fn global_model(&self) -> &DenseModel {
        &self.global
    }

    /// Completed round outcomes.
    pub fn history(&self) -> &[TrainingRound] {
        &self.history
    }

    /// Current test accuracy of the global model.
    pub fn evaluate(&self) -> f64 {
        accuracy_percent(&self.trainer, &self.global, self.dataset.test_set())
    }

    /// The accuracy-versus-round curve (round index, accuracy percent).
    pub fn accuracy_curve(&self) -> Vec<(usize, f64)> {
        self.history
            .iter()
            .filter_map(|r| r.accuracy.map(|a| (r.round, a)))
            .collect()
    }

    /// Runs one synchronous round: select participants, train each locally,
    /// ingest every update dense through the backend's ingress (the backend
    /// encodes at ingress under a lossy codec, with per-client error
    /// feedback), aggregate the backend's tree, adopt the global aggregate
    /// and optionally evaluate.
    ///
    /// # Errors
    /// Fails if the selection cannot fill the backend's tree (exactly, under
    /// the default configuration; after straggler cut-off, under a positive
    /// [`TrainingConfig::expected_dropout`]), or on any backend
    /// ingest/aggregation error. The backend's round is discarded on
    /// *every* failure path — including an aggregation failure — so the
    /// driver stays reusable.
    pub fn run_round(&mut self, rng: &mut SimRng) -> Result<TrainingRound> {
        let round = self.history.len() + 1;
        let participants = self.population.select_round(rng);
        let capacity = self.backend.round_capacity();
        let stragglers = std::mem::take(&mut self.stragglers);
        if self.config.streaming {
            // Streaming ingress: the backend's admission queues absorb any
            // surplus and its close rule (exact or quorum) decides whether
            // the round can drive — no selection-size precondition here.
        } else if self.config.expected_dropout > 0.0 {
            // Over-provisioned selection (§3): validate the rate and relax
            // the exact-fill check — the selection only has to cover the
            // tree after the expected drop-outs.
            let target = over_provisioned_selection(capacity as u64, self.config.expected_dropout)?;
            if (participants.len() as u64) < target.min(capacity as u64) {
                return Err(LiflError::InvalidConfig(format!(
                    "round selected {} participants but an expected dropout \
                     of {} over a {capacity}-update tree needs {target}",
                    participants.len(),
                    self.config.expected_dropout
                )));
            }
        } else if participants.len() != capacity {
            return Err(LiflError::InvalidConfig(format!(
                "round selected {} participants but the backend tree \
                 aggregates exactly {capacity}",
                participants.len()
            )));
        }
        // Keep-alive bookkeeping: every participant registers at round
        // start; deliveries complete, released spares are excused, and
        // whoever is left at the timeout is a cut-off straggler.
        let round_start = SimTime::ZERO;
        let mut monitor = HeartbeatMonitor::new(self.config.straggler_timeout);
        for client in &participants {
            monitor.register(client.id, round_start);
        }
        let mut loss_sum = 0.0;
        let mut trained = 0usize;
        let mut delivered = 0usize;
        let mut queued = 0u64;
        for client in &participants {
            if !self.config.streaming && delivered == capacity {
                // The tree is full: the remaining spares stay idle.
                monitor.complete(client.id);
                continue;
            }
            if stragglers.contains(&client.id) {
                // Never reports; cut off at the timeout below.
                continue;
            }
            let shard = self.dataset.shard(client.id);
            let (local, loss) = self.trainer.train(&self.global, shard, rng);
            loss_sum += loss;
            trained += 1;
            let samples = shard.len().max(1) as u64;
            let update = Update::dense(client.id, local, samples);
            if self.config.streaming {
                match self.backend.try_ingest(update) {
                    Ok(lifl_types::AdmissionOutcome::Admitted) => {
                        monitor.complete(client.id);
                        delivered += 1;
                    }
                    Ok(lifl_types::AdmissionOutcome::Queued { .. }) => {
                        // Parked for the next round; not a straggler.
                        monitor.complete(client.id);
                        queued += 1;
                    }
                    Ok(lifl_types::AdmissionOutcome::Rejected { .. }) => {
                        // Queue budget exhausted: the delivery is turned
                        // away and the client is cut off at the timeout.
                    }
                    Err(error) => {
                        self.backend.discard_round();
                        return Err(error);
                    }
                }
            } else {
                if let Err(error) = self.backend.ingest_update(update) {
                    self.backend.discard_round();
                    return Err(error);
                }
                monitor.complete(client.id);
                delivered += 1;
            }
        }
        let cutoff = round_start + self.config.straggler_timeout + SimDuration::from_secs(1.0);
        let dropped = monitor.take_failed(cutoff).len() as u64;
        if !self.config.streaming && delivered < capacity {
            self.backend.discard_round();
            return Err(LiflError::InvalidConfig(format!(
                "only {delivered} of {capacity} updates arrived before the \
                 straggler timeout ({dropped} clients cut off)"
            )));
        }
        let aggregate = match self.backend.aggregate_round() {
            Ok(aggregate) => aggregate,
            Err(error) => {
                // The documented contract: a failed round never leaks
                // backend state into the next one.
                self.backend.discard_round();
                return Err(error);
            }
        };
        self.global = aggregate.update.model;
        let accuracy = if round.is_multiple_of(self.config.eval_every.max(1)) {
            Some(self.evaluate())
        } else {
            None
        };
        let outcome = TrainingRound {
            round,
            updates: aggregate.updates_ingested,
            accuracy,
            train_loss: loss_sum / trained.max(1) as f64,
            ingress_wire_bytes: aggregate.ingress_wire_bytes,
            dropped,
            queued,
        };
        self.history.push(outcome.clone());
        Ok(outcome)
    }

    /// Runs all configured rounds and returns the history.
    ///
    /// # Errors
    /// Stops at and returns the first failing round (completed rounds stay
    /// in [`TrainingDriver::history`]).
    pub fn run_all(&mut self, rng: &mut SimRng) -> Result<Vec<TrainingRound>> {
        for _ in 0..self.config.rounds {
            self.run_round(rng)?;
        }
        Ok(self.history.clone())
    }
}

impl TrainingDriver<Cluster> {
    /// Like [`TrainingDriver::run_round`], but survives node failures on a
    /// fault-tolerant cluster (see [`crate::cluster::ClusterBuilder::fault_tolerance`]):
    ///
    /// * A killed *child* node fails the drive with
    ///   [`LiflError::NodeFailure`]; the driver re-sends the lost clients'
    ///   cached updates ([`Cluster::take_lost_clients`]) and re-drives the
    ///   round from the surviving subtrees — intermediates already folded at
    ///   the global top are never re-shipped.
    /// * A killed *top-hosting* node loses the round wholesale
    ///   ([`LiflError::AggregatorFailure`]); the driver adopts the recovered
    ///   checkpoint ([`Cluster::take_recovery`]) as its global model —
    ///   bit-exact with the checkpointed bytes — and returns the error so
    ///   the caller re-runs the round against the restored model.
    ///
    /// Retried folds arrive at the global top in a different order than an
    /// undisturbed round, so the aggregate matches a failure-free round to
    /// floating-point tolerance, not bit-exactly.
    ///
    /// # Errors
    /// Same conditions as [`TrainingDriver::run_round`], plus
    /// [`LiflError::AggregatorFailure`] after a top-host kill (with the
    /// global model already restored from the checkpoint).
    pub fn run_round_resilient(&mut self, rng: &mut SimRng) -> Result<TrainingRound> {
        let round = self.history.len() + 1;
        let participants = self.population.select_round(rng);
        let capacity = self.backend.round_capacity();
        if participants.len() != capacity {
            return Err(LiflError::InvalidConfig(format!(
                "round selected {} participants but the backend tree \
                 aggregates exactly {capacity}",
                participants.len()
            )));
        }
        // Cache every trained update so a node kill only costs a re-send,
        // not a re-train.
        let mut cached: Vec<(ClientId, DenseModel, u64)> = Vec::with_capacity(participants.len());
        let mut loss_sum = 0.0;
        for client in &participants {
            let shard = self.dataset.shard(client.id);
            let (local, loss) = self.trainer.train(&self.global, shard, rng);
            loss_sum += loss;
            let samples = shard.len().max(1) as u64;
            cached.push((client.id, local.clone(), samples));
            if let Err(error) = self
                .backend
                .ingest_update(Update::dense(client.id, local, samples))
            {
                self.backend.discard_round();
                return Err(error);
            }
        }
        let mut attempts = 0usize;
        let aggregate = loop {
            match self.backend.aggregate_round() {
                Ok(aggregate) => break aggregate,
                Err(LiflError::NodeFailure { .. }) => {
                    attempts += 1;
                    if attempts > self.backend.nodes() + 1 {
                        self.backend.discard_round();
                        return Err(LiflError::InvalidConfig(format!(
                            "round did not survive {attempts} node-failure retries"
                        )));
                    }
                    for id in self.backend.take_lost_clients() {
                        let Some((_, model, samples)) =
                            cached.iter().find(|(client, _, _)| *client == id)
                        else {
                            continue;
                        };
                        let update = Update::dense(id, model.clone(), *samples);
                        if let Err(error) = self.backend.ingest_update(update) {
                            self.backend.discard_round();
                            return Err(error);
                        }
                    }
                }
                Err(error @ LiflError::AggregatorFailure { .. }) => {
                    // The global top died: the round is unrecoverable, but
                    // the global model is — from the latest checkpoint.
                    if let Some(recovery) = self.backend.take_recovery() {
                        if let Some(model) = recovery.outcome.recovered_model {
                            self.global = model;
                        }
                    }
                    return Err(error);
                }
                Err(error) => {
                    self.backend.discard_round();
                    return Err(error);
                }
            }
        };
        self.global = aggregate.update.model;
        let accuracy = if round.is_multiple_of(self.config.eval_every.max(1)) {
            Some(self.evaluate())
        } else {
            None
        };
        let outcome = TrainingRound {
            round,
            updates: aggregate.updates_ingested,
            accuracy,
            train_loss: loss_sum / participants.len().max(1) as f64,
            ingress_wire_bytes: aggregate.ingress_wire_bytes,
            dropped: 0,
            queued: 0,
        };
        self.history.push(outcome.clone());
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Session, SessionBuilder};
    use lifl_fl::client::ClientAvailability;
    use lifl_fl::dataset::DatasetConfig;
    use lifl_fl::population::PopulationConfig;
    use lifl_types::Topology;

    fn fixtures(seed: u64) -> (FederatedDataset, Population, SimRng) {
        let mut rng = SimRng::from_seed(seed);
        let dataset = FederatedDataset::generate(
            DatasetConfig {
                num_clients: 24,
                num_features: 12,
                num_classes: 6,
                mean_samples_per_client: 40,
                dirichlet_alpha: 0.5,
                test_samples: 300,
                noise_std: 0.4,
            },
            &mut rng,
        );
        let population = Population::generate(
            PopulationConfig {
                total_clients: 24,
                active_per_round: 8,
                availability: ClientAvailability::AlwaysOn,
                mean_samples: 40,
                speed_spread: 0.3,
            },
            &mut rng,
        );
        (dataset, population, rng)
    }

    fn session(codec: lifl_types::CodecKind) -> Session {
        SessionBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .codec(codec)
            .build()
            .unwrap()
    }

    #[test]
    fn driver_over_a_session_learns() {
        let (dataset, population, mut rng) = fixtures(42);
        let mut driver = TrainingDriver::new(
            session(lifl_types::CodecKind::Identity),
            dataset,
            population,
            TrainingConfig {
                rounds: 12,
                ..TrainingConfig::default()
            },
        );
        let initial = driver.evaluate();
        let history = driver.run_all(&mut rng).unwrap();
        assert_eq!(history.len(), 12);
        let final_acc = driver.evaluate();
        assert!(
            final_acc > initial + 10.0,
            "driver should learn noticeably: {initial} -> {final_acc}"
        );
        assert!(history.iter().all(|r| r.updates == 8));
        assert!(history.iter().all(|r| r.ingress_wire_bytes > 0));
        assert_eq!(driver.accuracy_curve().len(), 12);
    }

    #[test]
    fn capacity_mismatch_is_an_error_and_keeps_the_driver_reusable() {
        let (dataset, _, mut rng) = fixtures(7);
        // 10 active participants can never fill an 8-update tree.
        let population = Population::generate(
            PopulationConfig {
                total_clients: 24,
                active_per_round: 10,
                availability: ClientAvailability::AlwaysOn,
                mean_samples: 40,
                speed_spread: 0.3,
            },
            &mut rng,
        );
        let mut driver = TrainingDriver::new(
            session(lifl_types::CodecKind::Identity),
            dataset,
            population,
            TrainingConfig::default(),
        );
        assert!(driver.run_round(&mut rng).is_err());
        assert!(driver.history().is_empty());
        assert_eq!(driver.backend().pending_updates(), 0);
    }

    #[test]
    fn aggregate_failure_discards_the_backend_round_and_keeps_the_driver_reusable() {
        use crate::cluster::{ClusterBuilder, FaultToleranceConfig};
        use lifl_types::NodeId;

        let (dataset, population, mut rng) = fixtures(42);
        let cluster = ClusterBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .fault_tolerance(FaultToleranceConfig::default())
            .build()
            .unwrap();
        let mut driver =
            TrainingDriver::new(cluster, dataset, population, TrainingConfig::default());
        // A node kill mid-drive fails the round *after* every ingest went
        // through — the exact path that used to leak the backend's partial
        // round out of `run_round`.
        driver
            .backend_mut()
            .schedule_node_failure(NodeId::new(1), 0)
            .unwrap();
        let outcome = driver.run_round(&mut rng);
        assert!(matches!(outcome, Err(LiflError::NodeFailure { .. })));
        assert!(driver.history().is_empty());
        // The documented contract: the failed round was discarded, so the
        // driver is immediately reusable with a full, fresh round.
        assert_eq!(driver.backend().pending_updates(), 0);
        let outcome = driver.run_round(&mut rng).unwrap();
        assert_eq!(outcome.round, 1);
        assert_eq!(outcome.updates, 8);
    }

    #[test]
    fn stragglers_are_cut_off_and_spares_fill_the_round() {
        let (dataset, _, mut rng) = fixtures(11);
        // All 10 clients participate every round: 2 spares over the 8-update
        // tree, covering the expected 20% dropout.
        let population = Population::generate(
            PopulationConfig {
                total_clients: 10,
                active_per_round: 10,
                availability: ClientAvailability::AlwaysOn,
                mean_samples: 40,
                speed_spread: 0.3,
            },
            &mut rng,
        );
        let mut driver = TrainingDriver::new(
            session(lifl_types::CodecKind::Identity),
            dataset,
            population,
            TrainingConfig {
                expected_dropout: 0.2,
                ..TrainingConfig::default()
            },
        );
        driver.mark_straggler(lifl_types::ClientId::new(0));
        driver.mark_straggler(lifl_types::ClientId::new(3));
        let outcome = driver.run_round(&mut rng).unwrap();
        assert_eq!(outcome.updates, 8, "spares filled the cut-off slots");
        assert_eq!(outcome.dropped, 2, "both stragglers were cut off");
        // Straggler marks are consumed: the next round is clean.
        let outcome = driver.run_round(&mut rng).unwrap();
        assert_eq!(outcome.dropped, 0);

        // Too many stragglers exhaust the spares: the round fails loudly
        // and the driver stays reusable.
        for id in [1u64, 2, 4] {
            driver.mark_straggler(lifl_types::ClientId::new(id));
        }
        assert!(driver.run_round(&mut rng).is_err());
        assert_eq!(driver.backend().pending_updates(), 0);
        assert!(driver.run_round(&mut rng).is_ok());
    }

    #[test]
    fn streaming_driver_parks_surplus_in_the_admission_queue() {
        let (dataset, _, mut rng) = fixtures(5);
        // 10 deliveries per round against an 8-update tree: without the
        // streaming ingress this selection can never drive (see
        // `capacity_mismatch_is_an_error_and_keeps_the_driver_reusable`);
        // with it, the surplus parks in the backend's bounded queues.
        let population = Population::generate(
            PopulationConfig {
                total_clients: 24,
                active_per_round: 10,
                availability: ClientAvailability::AlwaysOn,
                mean_samples: 40,
                speed_spread: 0.3,
            },
            &mut rng,
        );
        let backend = SessionBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .admission(lifl_types::AdmissionConfig::bounded(4, 1 << 20))
            .build()
            .unwrap();
        let mut driver = TrainingDriver::new(
            backend,
            dataset,
            population,
            TrainingConfig {
                streaming: true,
                ..TrainingConfig::default()
            },
        );
        let outcome = driver.run_round(&mut rng).unwrap();
        assert_eq!(outcome.updates, 8, "the round closed at the tree's fill");
        assert_eq!(outcome.queued, 2, "the two surplus deliveries parked");
        assert_eq!(outcome.dropped, 0);
        // The parked deliveries drained into the next round, so round 2
        // admits two fewer of its own selection and parks the rest.
        assert_eq!(driver.backend().pending_updates(), 2);
        let outcome = driver.run_round(&mut rng).unwrap();
        assert_eq!(outcome.updates, 8);
        assert_eq!(outcome.queued, 4);
    }
}
