//! # lifl-serverless
//!
//! The serverless- and serverful-platform substrates the paper's baselines run
//! on (Fig. 2, §2.3, §6): function instances with cold/warm starts and
//! keep-alive, a Knative-KPA-style threshold autoscaler, load-balancing
//! policies (least-connection / round-robin), an always-on message-broker
//! service, container sidecars and a fixed serverful deployment.
//!
//! LIFL itself replaces most of these components; they are implemented here so
//! the baseline systems (`lifl-baselines`) are real systems rather than
//! hard-coded numbers.
//!
//! The substrate covers both the coarse behaviour the Fig. 8/9 experiments
//! need ([`autoscale`], [`instance`], [`loadbalance`]) and the finer-grained
//! Knative mechanics that explain *why* the baseline behaves the way it does:
//! the stable/panic-window KPA control loop ([`kpa`]), pod/revision lifecycle
//! reconciliation ([`revision`]), per-pod request queuing ([`request_queue`])
//! and the cascading cold starts of function chains ([`chain`]). The [`fleet`]
//! module points the KPA loop the other way: it adapts the control loop into
//! a deterministic aggregator-fleet controller that `lifl-core`'s cluster
//! uses to grow and retire leaf subtrees from observed admission-queue depth.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autoscale;
pub mod broker_service;
pub mod chain;
pub mod fleet;
pub mod function;
pub mod instance;
pub mod kpa;
pub mod loadbalance;
pub mod request_queue;
pub mod revision;
pub mod serverful;
pub mod sidecar_container;

pub use autoscale::ThresholdAutoscaler;
pub use chain::{ChainReadiness, ChainScaling, FunctionChain};
pub use fleet::{FleetConfig, FleetController, FleetDecision};
pub use function::{FunctionSpec, InstanceState};
pub use instance::{AcquireOutcome, InstancePool};
pub use kpa::{KpaAutoscaler, KpaConfig, KpaDecision};
pub use loadbalance::{LeastConnection, LoadBalancer, RoundRobin};
pub use request_queue::{Admission, RequestQueue, RequestQueueConfig};
pub use revision::{PodPhase, Revision, RevisionStats};
pub use serverful::ServerfulDeployment;
