//! The sockmap: a BPF map from aggregator IDs to registered socket interfaces
//! (`BPF_MAP_TYPE_SOCKMAP`), used for intra-node direct routing (§4.4, Fig. 12).

use crate::map::BpfMap;
use lifl_types::{AggregatorId, NodeId};

/// A reference to a registered socket interface.
///
/// On the paper's testbed this is a socket file descriptor; here it names the
/// endpoint the message should be steered to: either a local aggregator's
/// receive queue or the node's gateway (for traffic that must leave the node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SocketRef {
    /// The socket of a local aggregator.
    Aggregator(AggregatorId),
    /// The socket of the local per-node gateway (used to reach remote aggregators).
    Gateway(NodeId),
}

/// The per-node sockmap.
///
/// Fig. 12 of the paper: on node 1 the entries for local aggregators point at
/// their own sockets while entries for remote aggregators point at the local
/// gateway's socket.
#[derive(Debug, Clone)]
pub struct SockMap {
    node: NodeId,
    map: BpfMap<AggregatorId, SocketRef>,
}

impl SockMap {
    /// Creates an empty sockmap for `node` with room for `max_entries` sockets.
    pub fn new(node: NodeId, max_entries: usize) -> Self {
        SockMap {
            node,
            map: BpfMap::new(max_entries),
        }
    }

    /// The node this sockmap belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Registers a local aggregator's socket.
    pub fn register_local(&self, agg: AggregatorId) -> bool {
        self.map.update_elem(agg, SocketRef::Aggregator(agg))
    }

    /// Registers a remote aggregator: messages for it are steered to the local gateway.
    pub fn register_remote(&self, agg: AggregatorId) -> bool {
        self.map.update_elem(agg, SocketRef::Gateway(self.node))
    }

    /// Looks up where a message destined for `agg` should be steered.
    pub fn steer(&self, agg: AggregatorId) -> Option<SocketRef> {
        self.map.lookup_elem(&agg)
    }

    /// Whether `agg` currently resolves to a local socket.
    pub fn is_local(&self, agg: AggregatorId) -> bool {
        matches!(self.steer(agg), Some(SocketRef::Aggregator(_)))
    }

    /// Removes the entry for `agg` (for example when the hierarchy is re-planned).
    pub fn deregister(&self, agg: AggregatorId) -> bool {
        self.map.delete_elem(&agg)
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the sockmap has no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Clears all routes, as done when the hierarchy is torn down.
    pub fn clear(&self) {
        self.map.clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_and_remote_steering() {
        let sockmap = SockMap::new(NodeId::new(1), 16);
        let local = AggregatorId::new(1);
        let remote = AggregatorId::new(2);
        sockmap.register_local(local);
        sockmap.register_remote(remote);
        assert_eq!(sockmap.steer(local), Some(SocketRef::Aggregator(local)));
        assert_eq!(
            sockmap.steer(remote),
            Some(SocketRef::Gateway(NodeId::new(1)))
        );
        assert!(sockmap.is_local(local));
        assert!(!sockmap.is_local(remote));
        assert_eq!(sockmap.steer(AggregatorId::new(99)), None);
    }

    #[test]
    fn deregister_and_clear() {
        let sockmap = SockMap::new(NodeId::new(0), 0);
        for i in 0..10 {
            sockmap.register_local(AggregatorId::new(i));
        }
        assert_eq!(sockmap.len(), 10);
        assert!(sockmap.deregister(AggregatorId::new(3)));
        assert!(!sockmap.deregister(AggregatorId::new(3)));
        assert_eq!(sockmap.len(), 9);
        sockmap.clear();
        assert!(sockmap.is_empty());
    }
}
