//! gRPC channel model: serialization/deserialization and framing on top of
//! kernel networking. Used by the serverful baseline (§6.1 "SF").
//!
//! The channel is priced off the bytes actually framed into the protobuf
//! message — for a quantized update that is its encoded wire size (see
//! [`GrpcChannelModel::encoded_intra_node_latency`]).

use crate::kernel_net::KernelNetModel;
use lifl_types::{CodecKind, CpuCycles, SimDuration};

/// Cost model of a gRPC message exchange between two co-located or remote
/// processes: protobuf (de)serialization plus two kernel-stack traversals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrpcChannelModel {
    /// The kernel path underneath the channel.
    pub kernel: KernelNetModel,
    /// Serialization + deserialization latency per mebibyte, seconds.
    pub serde_latency_per_mib: f64,
    /// Serialization + deserialization CPU cycles per mebibyte.
    pub serde_cycles_per_mib: f64,
}

impl Default for GrpcChannelModel {
    fn default() -> Self {
        GrpcChannelModel {
            kernel: KernelNetModel::default(),
            serde_latency_per_mib: 0.0026,
            serde_cycles_per_mib: 9.0e6,
        }
    }
}

impl GrpcChannelModel {
    /// End-to-end latency of sending `bytes` from one process to another on
    /// the same node (TX traversal + RX traversal + serde on both ends).
    pub fn intra_node_latency(&self, bytes: u64) -> SimDuration {
        let mib = bytes as f64 / (1024.0 * 1024.0);
        self.kernel.latency(bytes)
            + self.kernel.latency(bytes)
            + SimDuration::from_secs(self.serde_latency_per_mib * mib)
    }

    /// CPU cycles consumed on the node for one intra-node gRPC transfer.
    pub fn intra_node_cpu(&self, bytes: u64) -> CpuCycles {
        let mib = bytes as f64 / (1024.0 * 1024.0);
        CpuCycles(self.kernel.cpu(bytes).0 * 2.0 + self.serde_cycles_per_mib * mib)
    }

    /// Bytes buffered along the path (sender copy + receiver copy).
    pub fn buffered_bytes(&self, bytes: u64) -> u64 {
        2 * bytes
    }

    /// Intra-node latency for one `dense_bytes`-sized update framed under
    /// `codec`.
    pub fn encoded_intra_node_latency(&self, dense_bytes: u64, codec: CodecKind) -> SimDuration {
        self.intra_node_latency(codec.encoded_bytes(dense_bytes))
    }

    /// CPU cycles for the same codec-aware exchange.
    pub fn encoded_intra_node_cpu(&self, dense_bytes: u64, codec: CodecKind) -> CpuCycles {
        self.intra_node_cpu(codec.encoded_bytes(dense_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet152_latency_close_to_calibration() {
        let g = GrpcChannelModel::default();
        let lat = g.intra_node_latency(232 * 1024 * 1024).as_secs();
        // Paper: SF is ~3x LIFL's 0.76 s => ~2.3 s.
        assert!((1.6..3.2).contains(&lat), "got {lat}");
    }

    #[test]
    fn cpu_and_memory_grow_with_size() {
        let g = GrpcChannelModel::default();
        assert!(g.intra_node_cpu(200).0 < g.intra_node_cpu(2_000_000).0);
        assert_eq!(g.buffered_bytes(100), 200);
    }

    #[test]
    fn quantized_channel_is_cheaper() {
        let g = GrpcChannelModel::default();
        let dense = 83 * 1024 * 1024;
        assert_eq!(
            g.encoded_intra_node_latency(dense, CodecKind::Identity),
            g.intra_node_latency(dense)
        );
        assert!(
            g.encoded_intra_node_latency(dense, CodecKind::Uniform8) < g.intra_node_latency(dense)
        );
        assert!(g.encoded_intra_node_cpu(dense, CodecKind::Uniform4).0 < g.intra_node_cpu(dense).0);
    }
}
