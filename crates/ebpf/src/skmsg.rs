//! The SKMSG hook: `send()`-triggered, event-driven message steering (§4.3, §4.4).

use crate::sockmap::{SockMap, SocketRef};
use lifl_types::{AggregatorId, ObjectKey};

/// A message captured by the SKMSG hook: the object key of a model update
/// travelling from one aggregator to another. The payload never moves; only
/// this small descriptor does (Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SkMsg {
    /// Source aggregator.
    pub source: AggregatorId,
    /// Destination aggregator.
    pub destination: AggregatorId,
    /// Key of the model update in shared memory.
    pub key: ObjectKey,
    /// Number of raw client updates folded into the referenced object.
    pub weight: u64,
}

/// The verdict of running the SKMSG program on a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SkMsgVerdict {
    /// Deliver to the socket of a local aggregator (zero-copy shared-memory path).
    RedirectLocal(AggregatorId),
    /// Deliver to the local gateway, which will perform inter-node routing.
    RedirectGateway,
    /// Drop: no route is registered for the destination.
    Drop,
}

/// The in-kernel SKMSG hook with its attached program.
///
/// The hook fires only when `send()` is invoked (the emulation's
/// [`SkMsgHook::on_send`]), so it consumes no CPU when idle — the property the
/// paper exploits to replace always-on container sidecars (§4.3).
#[derive(Debug, Clone)]
pub struct SkMsgHook {
    sockmap: SockMap,
    invocations: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl SkMsgHook {
    /// Attaches a hook backed by the node's sockmap.
    pub fn attach(sockmap: SockMap) -> Self {
        SkMsgHook {
            sockmap,
            invocations: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
        }
    }

    /// Runs the SKMSG program for one `send()` invocation and returns the verdict.
    pub fn on_send(&self, msg: &SkMsg) -> SkMsgVerdict {
        self.invocations
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        match self.sockmap.steer(msg.destination) {
            Some(SocketRef::Aggregator(agg)) => SkMsgVerdict::RedirectLocal(agg),
            Some(SocketRef::Gateway(_)) => SkMsgVerdict::RedirectGateway,
            None => SkMsgVerdict::Drop,
        }
    }

    /// Number of times the hook has fired. Zero while idle, by construction.
    pub fn invocations(&self) -> u64 {
        self.invocations.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The sockmap the hook consults.
    pub fn sockmap(&self) -> &SockMap {
        &self.sockmap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifl_types::NodeId;

    fn msg(src: u64, dst: u64) -> SkMsg {
        SkMsg {
            source: AggregatorId::new(src),
            destination: AggregatorId::new(dst),
            key: ObjectKey::from_words(src, dst),
            weight: 1,
        }
    }

    #[test]
    fn verdicts_follow_sockmap() {
        let sockmap = SockMap::new(NodeId::new(0), 0);
        sockmap.register_local(AggregatorId::new(1));
        sockmap.register_remote(AggregatorId::new(2));
        let hook = SkMsgHook::attach(sockmap);
        assert_eq!(
            hook.on_send(&msg(0, 1)),
            SkMsgVerdict::RedirectLocal(AggregatorId::new(1))
        );
        assert_eq!(hook.on_send(&msg(0, 2)), SkMsgVerdict::RedirectGateway);
        assert_eq!(hook.on_send(&msg(0, 3)), SkMsgVerdict::Drop);
        assert_eq!(hook.invocations(), 3);
    }

    #[test]
    fn idle_hook_never_fires() {
        let hook = SkMsgHook::attach(SockMap::new(NodeId::new(0), 0));
        assert_eq!(hook.invocations(), 0);
    }
}
