//! Client failure detection via keep-alive heartbeats and over-provisioning
//! (§3: "LIFL detects client failures with keep-alive heartbeats and enhances
//! resilience by over-provisioning the number of clients").

use lifl_types::{ClientId, LiflError, Result, SimDuration, SimTime};
use std::collections::HashMap;

/// Tracks the last heartbeat of every selected client and flags the ones whose
/// heartbeat is older than the timeout.
#[derive(Debug, Clone)]
pub struct HeartbeatMonitor {
    timeout: SimDuration,
    last_seen: HashMap<ClientId, SimTime>,
}

impl HeartbeatMonitor {
    /// Creates a monitor with the given keep-alive timeout.
    pub fn new(timeout: SimDuration) -> Self {
        HeartbeatMonitor {
            timeout,
            last_seen: HashMap::new(),
        }
    }

    /// Registers a client at selection time (its first implicit heartbeat).
    pub fn register(&mut self, client: ClientId, now: SimTime) {
        self.last_seen.insert(client, now);
    }

    /// Records a heartbeat from a client. Unknown clients are registered.
    pub fn heartbeat(&mut self, client: ClientId, now: SimTime) {
        self.last_seen.insert(client, now);
    }

    /// Removes a client (for example once its update arrived).
    pub fn complete(&mut self, client: ClientId) {
        self.last_seen.remove(&client);
    }

    /// Clients whose last heartbeat is older than the timeout at `now`.
    ///
    /// This is a non-destructive peek: a client reported here is reported
    /// again on every later poll until it heartbeats, completes or is taken
    /// with [`HeartbeatMonitor::take_failed`]. Reactive callers (the cluster
    /// fault wiring) want the evicting variant so each failure is acted on
    /// exactly once.
    pub fn failed_clients(&self, now: SimTime) -> Vec<ClientId> {
        let mut failed: Vec<ClientId> = self
            .last_seen
            .iter()
            .filter(|(_, seen)| now.duration_since(**seen) > self.timeout)
            .map(|(client, _)| *client)
            .collect();
        failed.sort();
        failed
    }

    /// Like [`HeartbeatMonitor::failed_clients`], but evicts the reported
    /// clients from the monitor so every failure is reported exactly once —
    /// the semantics reactive consumers need (report, act, never re-act).
    pub fn take_failed(&mut self, now: SimTime) -> Vec<ClientId> {
        let failed = self.failed_clients(now);
        for client in &failed {
            self.last_seen.remove(client);
        }
        failed
    }

    /// Clients currently tracked (selected but not yet completed or failed).
    pub fn tracked(&self) -> usize {
        self.last_seen.len()
    }

    /// The keep-alive timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }
}

/// Drop-out rates above this saturate instead of inflating the selection
/// without bound (a 20x over-provisioning factor); rates outside `[0, 1)` are
/// rejected outright.
pub const MAX_DROPOUT_RATE: f64 = 0.95;

/// How many clients to select so that, with an expected drop-out rate, at
/// least `goal` updates arrive (the over-provisioning rule of §3).
///
/// Rates in `(MAX_DROPOUT_RATE, 1.0)` saturate at [`MAX_DROPOUT_RATE`]: the
/// selection stays finite (at most `20 * goal`) rather than exploding as the
/// rate approaches 1.
///
/// # Errors
/// Returns [`LiflError::InvalidConfig`] for a rate that is NaN, negative or
/// at least 1 (no finite selection can cover losing every client).
pub fn over_provisioned_selection(goal: u64, expected_dropout_rate: f64) -> Result<u64> {
    if !(0.0..1.0).contains(&expected_dropout_rate) {
        return Err(LiflError::InvalidConfig(format!(
            "expected dropout rate must be in [0,1), got {expected_dropout_rate}"
        )));
    }
    let rate = expected_dropout_rate.min(MAX_DROPOUT_RATE);
    Ok(((goal as f64) / (1.0 - rate)).ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_silent_clients() {
        let mut monitor = HeartbeatMonitor::new(SimDuration::from_secs(30.0));
        monitor.register(ClientId::new(1), SimTime::from_secs(0.0));
        monitor.register(ClientId::new(2), SimTime::from_secs(0.0));
        monitor.heartbeat(ClientId::new(2), SimTime::from_secs(25.0));
        let failed = monitor.failed_clients(SimTime::from_secs(40.0));
        assert_eq!(failed, vec![ClientId::new(1)]);
        assert_eq!(monitor.tracked(), 2);
        monitor.complete(ClientId::new(2));
        assert_eq!(monitor.tracked(), 1);
        assert_eq!(monitor.timeout().as_secs(), 30.0);
    }

    #[test]
    fn completed_clients_are_never_reported_failed() {
        let mut monitor = HeartbeatMonitor::new(SimDuration::from_secs(10.0));
        monitor.register(ClientId::new(7), SimTime::ZERO);
        monitor.complete(ClientId::new(7));
        assert!(monitor.failed_clients(SimTime::from_secs(100.0)).is_empty());
    }

    #[test]
    fn take_failed_reports_each_failure_exactly_once() {
        let mut monitor = HeartbeatMonitor::new(SimDuration::from_secs(30.0));
        monitor.register(ClientId::new(1), SimTime::ZERO);
        monitor.register(ClientId::new(2), SimTime::ZERO);
        monitor.heartbeat(ClientId::new(2), SimTime::from_secs(50.0));
        // failed_clients is a peek: polling twice re-reports.
        let now = SimTime::from_secs(40.0);
        assert_eq!(monitor.failed_clients(now), vec![ClientId::new(1)]);
        assert_eq!(monitor.failed_clients(now), vec![ClientId::new(1)]);
        // take_failed evicts: the second take is empty, survivors stay.
        assert_eq!(monitor.take_failed(now), vec![ClientId::new(1)]);
        assert!(monitor.take_failed(now).is_empty());
        assert_eq!(monitor.tracked(), 1);
    }

    #[test]
    fn over_provisioning_covers_dropout() {
        assert_eq!(over_provisioned_selection(120, 0.0).unwrap(), 120);
        assert_eq!(over_provisioned_selection(120, 0.2).unwrap(), 150);
        assert_eq!(over_provisioned_selection(15, 0.25).unwrap(), 20);
        // Rates beyond MAX_DROPOUT_RATE saturate so selection stays finite.
        assert_eq!(over_provisioned_selection(10, 0.99).unwrap(), 200);
        assert_eq!(
            over_provisioned_selection(10, 0.96).unwrap(),
            over_provisioned_selection(10, MAX_DROPOUT_RATE).unwrap()
        );
        // Rates outside [0,1) are rejected, not silently clamped.
        assert!(over_provisioned_selection(10, 1.0).is_err());
        assert!(over_provisioned_selection(10, -0.1).is_err());
        assert!(over_provisioned_selection(10, f64::NAN).is_err());
    }
}
