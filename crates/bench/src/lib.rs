//! # lifl-bench
//!
//! Criterion benchmark targets, one per table/figure of the paper's
//! evaluation plus micro-benchmarks of the shared-memory store and FedAvg.
//! Run `cargo bench --workspace`; each target prints the rows/series it
//! regenerates before measuring.
//!
//! [`baseline`] is the *persisted* counterpart: the `bench_baseline` binary
//! measures the aggregation hot path and writes the schema-versioned
//! `BENCH_aggregation.json` committed at the repo root. [`ingest`] does the
//! same for the streaming admission path (`bench_ingest` writes
//! `BENCH_ingest.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod ingest;
