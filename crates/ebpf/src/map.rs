//! Generic BPF map emulation.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// An in-kernel-style key/value map with a bounded number of entries,
/// mirroring `BPF_MAP_TYPE_HASH`. Updates from user space go through
/// [`BpfMap::update_elem`], mirroring `bpf_map_update_elem()` (Appendix A).
#[derive(Debug, Clone)]
pub struct BpfMap<K, V> {
    inner: Arc<RwLock<HashMap<K, V>>>,
    max_entries: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> BpfMap<K, V> {
    /// Creates a map with room for `max_entries` entries (0 = unbounded).
    pub fn new(max_entries: usize) -> Self {
        BpfMap {
            inner: Arc::new(RwLock::new(HashMap::new())),
            max_entries,
        }
    }

    /// Inserts or replaces the value for `key`, mirroring `bpf_map_update_elem`.
    ///
    /// Returns `false` (and does not insert) when the map is full and the key
    /// is not already present, which is the kernel's `E2BIG`/`ENOSPC` behaviour.
    pub fn update_elem(&self, key: K, value: V) -> bool {
        let mut map = self.inner.write();
        if self.max_entries > 0 && map.len() >= self.max_entries && !map.contains_key(&key) {
            return false;
        }
        map.insert(key, value);
        true
    }

    /// Looks up the value for `key`, mirroring `bpf_map_lookup_elem`.
    pub fn lookup_elem(&self, key: &K) -> Option<V> {
        self.inner.read().get(key).cloned()
    }

    /// Deletes the entry for `key`, mirroring `bpf_map_delete_elem`.
    pub fn delete_elem(&self, key: &K) -> bool {
        self.inner.write().remove(key).is_some()
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Snapshot of all entries (used by the user-space agent when draining metrics).
    pub fn snapshot(&self) -> Vec<(K, V)> {
        self.inner
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Removes every entry.
    pub fn clear(&self) {
        self.inner.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_lookup_delete() {
        let map: BpfMap<u32, &'static str> = BpfMap::new(0);
        assert!(map.update_elem(1, "a"));
        assert!(map.update_elem(2, "b"));
        assert_eq!(map.lookup_elem(&1), Some("a"));
        assert!(map.delete_elem(&1));
        assert!(!map.delete_elem(&1));
        assert_eq!(map.lookup_elem(&1), None);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn capacity_enforced_like_kernel() {
        let map: BpfMap<u32, u32> = BpfMap::new(2);
        assert!(map.update_elem(1, 10));
        assert!(map.update_elem(2, 20));
        assert!(!map.update_elem(3, 30), "full map rejects new keys");
        assert!(map.update_elem(2, 21), "existing keys can still be updated");
        assert_eq!(map.lookup_elem(&2), Some(21));
    }

    #[test]
    fn snapshot_and_clear() {
        let map: BpfMap<u8, u8> = BpfMap::new(0);
        for i in 0..5 {
            map.update_elem(i, i * 2);
        }
        let mut snap = map.snapshot();
        snap.sort();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap[3], (3, 6));
        map.clear();
        assert!(map.is_empty());
    }

    #[test]
    fn map_handles_are_shared() {
        let map: BpfMap<u8, u8> = BpfMap::new(0);
        let alias = map.clone();
        map.update_elem(9, 99);
        assert_eq!(alias.lookup_elem(&9), Some(99));
    }
}
