//! Allocation-counting tier: proves the buffer-pooled aggregation hot path
//! runs at **zero model-sized heap allocations** per steady-state round.
//!
//! A counting [`GlobalAlloc`] shim wraps the system allocator and counts
//! every allocation (and growing reallocation) of at least
//! [`MODEL_SIZED_BYTES`]. The tier lives in its own test binary so no
//! unrelated test's allocations can pollute the counters; the one test is
//! `#[test]`-single so the counter observes exactly the round loop.

// lifl-lint: allow-file(unsafe) — implementing `GlobalAlloc` requires
// `unsafe`; this counting shim is the one sanctioned unsafe site outside
// the kernel layer and only delegates to the system allocator.

use lifl_fl::aggregate::CumulativeFedAvg;
use lifl_fl::codec::{ErrorFeedback, UpdateCodec};
use lifl_fl::sharded::ShardedFedAvg;
use lifl_fl::{DenseModel, ModelUpdate};
use lifl_shmem::BufferPool;
use lifl_types::{ClientId, CodecKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Anything at least this large counts as "model-sized". The test model is
/// 2 MiB dense (524288 `f32`), so every model-shaped buffer — dense scratch,
/// u8 encode body, residual — is at least twice this threshold.
const MODEL_SIZED_BYTES: usize = 256 * 1024;

static LARGE_ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation unchanged to the system allocator; the
// only addition is a relaxed atomic counter bump on large requests.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: same contract as `System::alloc`; the caller's `Layout`
    // obligations pass through unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if layout.size() >= MODEL_SIZED_BYTES {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwards the caller's layout to the system allocator.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as `System::dealloc`; `ptr`/`layout` obligations
    // pass through unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwards the caller's pointer and layout unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as `System::alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if layout.size() >= MODEL_SIZED_BYTES {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwards the caller's layout to the system allocator.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: same contract as `System::realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size >= MODEL_SIZED_BYTES {
            LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwards the caller's pointer, layout and size unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn model_sized_allocs() -> u64 {
    LARGE_ALLOCS.load(Ordering::Relaxed)
}

/// One steady-state aggregation round over the pooled hot path: every client
/// encodes with error feedback (pooled compensation scratch + pooled encode
/// body), the aggregator folds each encoded update fused, the round drains
/// in place, and the encode bodies are checked back in.
fn run_round(
    clients: &[(ClientId, DenseModel)],
    feedback: &mut ErrorFeedback,
    accumulator: &mut CumulativeFedAvg,
    global: &mut DenseModel,
) {
    for (client, model) in clients {
        let encoded = feedback.encode(*client, model).expect("encode");
        accumulator
            .fold_encoded(&encoded, 1 + client.index())
            .expect("fold");
        feedback.recycle(encoded);
    }
    accumulator.drain_into(global).expect("drain");
}

// Both phases live in ONE #[test]: the harness runs tests in parallel
// threads, and two tests sampling the same global counter would race.
#[test]
fn steady_state_rounds_make_zero_model_sized_allocations() {
    const DIM: usize = 1 << 19; // 2 MiB of f32 per model
    let pool = BufferPool::new();
    let codec = UpdateCodec::with_seed(CodecKind::Uniform8, 0xA110C).with_pool(pool.clone());
    let mut feedback = ErrorFeedback::new(codec);
    let mut accumulator = CumulativeFedAvg::new(DIM);
    let mut global = DenseModel::zeros(DIM);
    let clients: Vec<(ClientId, DenseModel)> = (0..4u64)
        .map(|c| {
            let values: Vec<f32> = (0..DIM)
                .map(|d| ((d as u64 * 29 + c * 13) % 97) as f32 * 0.02 - 0.9)
                .collect();
            (ClientId::new(c), DenseModel::from_vec(values))
        })
        .collect();

    // Warm-up: first rounds size the pool slab, the per-client residuals and
    // the accumulator.
    for _ in 0..2 {
        run_round(&clients, &mut feedback, &mut accumulator, &mut global);
    }

    let before = model_sized_allocs();
    for _ in 0..10 {
        run_round(&clients, &mut feedback, &mut accumulator, &mut global);
    }
    let after = model_sized_allocs();
    assert_eq!(
        after - before,
        0,
        "steady-state rounds must not allocate model-sized buffers \
         ({} allocations of >= {} bytes in 10 rounds)",
        after - before,
        MODEL_SIZED_BYTES
    );

    // The pool did real work: scratch checkouts were served from the slab...
    let stats = pool.stats();
    assert!(stats.hits > 0, "pool never reused a buffer: {stats:?}");
    // ...and its resident footprint stayed bounded (compensation scratch +
    // encode body, not one buffer per round).
    assert!(
        stats.peak_idle_buffers <= 4,
        "pool slab grew unexpectedly: {stats:?}"
    );

    // The rounds actually aggregated: the drained global is the weighted mean
    // of the (quantized) client updates, which is nonzero.
    assert!(global.l2_norm() > 1.0, "global model was never written");

    // Phase 2: the sharded batch fold + in-place drain is equally
    // allocation-free once its accumulator is sized.
    let updates: Vec<ModelUpdate> = (0..4u64)
        .map(|c| {
            let values: Vec<f32> = (0..DIM)
                .map(|d| ((d as u64 * 7 + c * 31) % 89) as f32 * 0.01 - 0.4)
                .collect();
            ModelUpdate::from_client(ClientId::new(c), DenseModel::from_vec(values), c + 1)
        })
        .collect();
    let mut sharded = ShardedFedAvg::new(DIM, 2);
    let mut out = DenseModel::zeros(DIM);
    sharded.fold_batch(&updates).expect("warm-up fold");
    sharded.drain_into(&mut out).expect("warm-up drain");

    let before = model_sized_allocs();
    for _ in 0..10 {
        sharded.fold_batch(&updates).expect("fold");
        sharded.drain_into(&mut out).expect("drain");
    }
    assert_eq!(
        model_sized_allocs() - before,
        0,
        "sharded batch fold + drain must reuse the accumulator allocation"
    );
    assert!(out.l2_norm() > 0.0);

    // Phase 3: top-k encoding is equally allocation-free — its
    // index-selection scratch (one u32 per parameter, 2 MiB here) is drawn
    // from the pool alongside the encode body and compensation buffer.
    let topk_pool = BufferPool::new();
    let topk_codec = UpdateCodec::with_seed(CodecKind::TopK { permille: 250 }, 0x70CF)
        .with_pool(topk_pool.clone());
    let mut topk_feedback = ErrorFeedback::new(topk_codec);
    let mut topk_accumulator = CumulativeFedAvg::new(DIM);
    let mut topk_global = DenseModel::zeros(DIM);
    for _ in 0..2 {
        run_round(
            &clients,
            &mut topk_feedback,
            &mut topk_accumulator,
            &mut topk_global,
        );
    }
    let before = model_sized_allocs();
    for _ in 0..10 {
        run_round(
            &clients,
            &mut topk_feedback,
            &mut topk_accumulator,
            &mut topk_global,
        );
    }
    assert_eq!(
        model_sized_allocs() - before,
        0,
        "steady-state top-k encode must draw its index scratch from the pool"
    );
    let topk_stats = topk_pool.stats();
    assert!(
        topk_stats.hits > 0,
        "top-k pool never reused: {topk_stats:?}"
    );
    assert!(
        topk_global.l2_norm() > 0.0,
        "top-k rounds aggregated nothing"
    );

    // Phase 4: the cluster hop — forwarding a node session's exported
    // intermediate to the parent gateway as `Update::RemoteBytes` — is
    // zero-copy end to end: the sending store's buffer is shared into the
    // envelope and stored as-is by the receiving gateway (header-only
    // parsing for encoded payloads), so a steady-state hop never allocates
    // a model-sized buffer, encoded or dense.
    use lifl_core::gateway::Gateway;
    use lifl_fl::Update;
    use lifl_shmem::ObjectStore;
    use lifl_types::{AggregatorId, NodeId};

    let values: Vec<f32> = (0..DIM).map(|d| (d % 83) as f32 * 0.01 - 0.4).collect();
    let sender = ObjectStore::new();
    let mut hop_codec = UpdateCodec::with_seed(CodecKind::Uniform8, 0xC10B);
    let encoded = hop_codec.encode(&DenseModel::from_vec(values.clone()));
    let encoded_key = sender
        .put_encoded(encoded.to_bytes(), encoded.dense_bytes())
        .expect("sender put encoded");
    let dense_key = sender.put_f32(&values).expect("sender put dense");

    let receiver_store = ObjectStore::new();
    let mut receiver = Gateway::new(NodeId::new(1), receiver_store.clone());
    let top = AggregatorId::new(1);
    let inbox = receiver.register_aggregator(top);

    let mut run_hop = |key: &lifl_types::ObjectKey, encoded: bool| {
        // Transmit side: a shared handle onto the sender store's bytes.
        let wire = sender.get(key).expect("sender get").bytes();
        let update = Update::remote_bytes(wire, 4, encoded);
        // Receive side: one-time payload processing + in-place enqueue.
        receiver.ingest(top, &update).expect("receiver ingest");
        let queued = inbox.dequeue().expect("queued hop");
        receiver_store.recycle(&queued.key).expect("recycle");
    };
    // Warm-up sizes the receiver store's bookkeeping.
    run_hop(&encoded_key, true);
    run_hop(&dense_key, false);

    let before = model_sized_allocs();
    for _ in 0..10 {
        run_hop(&encoded_key, true);
        run_hop(&dense_key, false);
    }
    assert_eq!(
        model_sized_allocs() - before,
        0,
        "steady-state cluster hops must share the sender's buffer, not copy it"
    );
    assert_eq!(receiver_store.stats().live_objects, 0);
}
