# Local invocations mirroring CI (.github/workflows/ci.yml) exactly.
# Requires `just` (https://github.com/casey/just); every recipe body is a
# plain cargo command, so copy-paste works without it too.

# Run the full CI gate locally.
default: lint build test bench-check

# Formatting + clippy, denying warnings (CI `lint` job).
lint:
    cargo fmt --all --check
    cargo clippy --workspace --all-targets -- -D warnings

# Tier-1 release build.
build:
    cargo build --release

# Tier-1 test suite.
test:
    cargo test -q

# Ensure every criterion bench target still compiles.
bench-check:
    cargo bench --no-run

# Actually run the benchmark suite (slow).
bench:
    cargo bench

# Run the codec ablation (bytes-on-wire x time-to-accuracy sweep).
fig-codec:
    cargo run --release -p lifl-experiments --bin fig_codec

# Apply formatting in place.
fmt:
    cargo fmt --all
