//! Regenerates Fig. 13 (message-queuing overheads, Appendix F).
fn main() {
    let result = lifl_experiments::fig13::run();
    println!("{}", lifl_experiments::fig13::format(&result));
    println!("{}", lifl_experiments::report::to_json(&result));
}
