//! A token-level Rust lexer.
//!
//! `syn` is not available offline, so the lint rules run over a hand-rolled
//! token stream instead of a real AST. The lexer's one job is to classify
//! every byte of a source file correctly enough that rules never mistake the
//! inside of a string literal or a comment for code (and vice versa): it
//! understands line and nested block comments, doc comments, string/char
//! literals with escapes, raw strings with arbitrary `#` fences, byte and
//! C-string prefixes, lifetimes, numbers, identifiers and punctuation.
//! Every token carries the 1-based line it starts on, which is what the
//! diagnostics point at.

/// What a token is. Rules mostly care about the code/comment distinction;
/// literal payloads are retained but never interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fn`, `HashMap`, ...).
    Ident,
    /// Single punctuation character (`#`, `[`, `::` arrives as two `:`).
    Punct,
    /// Numeric literal, including suffixes and exponents.
    Num,
    /// String literal of any flavor (plain, raw, byte, C).
    Str,
    /// Character or byte-character literal.
    CharLit,
    /// Lifetime (`'a`) or loop label.
    Lifetime,
    /// Plain `//` comment (not a doc comment).
    LineComment,
    /// `///` or `//!` doc comment line, or `/** */` / `/*! */` block.
    DocComment,
    /// Plain `/* */` block comment (possibly nested).
    BlockComment,
}

/// One lexed token: kind, verbatim text, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// The token's source text, verbatim.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True for the comment kinds (line, block, doc).
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment | TokKind::DocComment | TokKind::BlockComment
        )
    }

    /// True when this is code (not a comment): identifiers, punctuation and
    /// literals.
    pub fn is_code(&self) -> bool {
        !self.is_comment()
    }

    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True when the token is a punctuation character with this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking newlines.
    fn bump(&mut self) {
        if self.bytes.get(self.pos) == Some(&b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        self.out.push(Tok {
            kind,
            text: self.src[start..self.pos].to_string(),
            line,
        });
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        while self.peek(0).is_some_and(|b| b != b'\n') {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        // `////...` dividers are plain comments; `///` and `//!` are docs.
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        let kind = if doc {
            TokKind::DocComment
        } else {
            TokKind::LineComment
        };
        self.push(kind, start, line);
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.bump_n(2);
        let mut depth = 1usize;
        while depth > 0 && self.pos < self.bytes.len() {
            if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
        let text = &self.src[start..self.pos];
        let doc = (text.starts_with("/**") && !text.starts_with("/***") && text != "/**/")
            || text.starts_with("/*!");
        let kind = if doc {
            TokKind::DocComment
        } else {
            TokKind::BlockComment
        };
        self.push(kind, start, line);
    }

    /// Consumes a plain string body after the opening quote.
    fn string_body(&mut self) {
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw string: caller sits on `r` (prefixes already skipped);
    /// the body runs until `"` followed by the same number of `#` fences.
    fn raw_string_body(&mut self, hashes: usize) {
        while self.pos < self.bytes.len() {
            if self.peek(0) == Some(b'"') {
                let closed = (1..=hashes).all(|k| self.peek(k) == Some(b'#'));
                if closed {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    /// Tries to lex a string literal (with any `r`/`b`/`c` prefix) at the
    /// current position; returns false if the position does not start one.
    fn try_string(&mut self) -> bool {
        let (start, line) = (self.pos, self.line);
        let mut k = 0usize;
        // Optional one- or two-letter prefix out of {b, c, r, br, cr}.
        let mut raw = false;
        match (self.peek(0), self.peek(1)) {
            (Some(b'r'), _) => {
                raw = true;
                k = 1;
            }
            (Some(b'b') | Some(b'c'), Some(b'r')) => {
                raw = true;
                k = 2;
            }
            (Some(b'b') | Some(b'c'), _) => {
                k = 1;
            }
            _ => {}
        }
        let mut hashes = 0usize;
        if raw {
            while self.peek(k + hashes) == Some(b'#') {
                hashes += 1;
            }
        }
        if self.peek(k + hashes) != Some(b'"') {
            return false;
        }
        self.bump_n(k + hashes + 1);
        if raw {
            self.raw_string_body(hashes);
        } else {
            self.string_body();
        }
        self.push(TokKind::Str, start, line);
        true
    }

    /// Lexes `'...'` char literals and `'a` lifetimes. Caller sits on `'`.
    fn quote(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.bump();
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: skip the escape, then to closing quote.
                self.bump();
                self.bump();
                while self.peek(0).is_some_and(|b| b != b'\'') {
                    self.bump();
                }
                self.bump();
                self.push(TokKind::CharLit, start, line);
            }
            Some(b) if is_ident_start(b as char) || b >= 0x80 => {
                // `'x'` is a char literal; `'x` (no closing quote after one
                // character) is a lifetime. Multi-byte chars scan forward to
                // the quote.
                let mut k = 1;
                while self
                    .peek(k)
                    .is_some_and(|n| is_ident_continue(n as char) || n >= 0x80)
                {
                    k += 1;
                }
                if self.peek(k) == Some(b'\'') {
                    self.bump_n(k + 1);
                    self.push(TokKind::CharLit, start, line);
                } else {
                    self.bump_n(k);
                    self.push(TokKind::Lifetime, start, line);
                }
            }
            Some(_) => {
                // `'1'`, `'%'` etc.: single char then closing quote.
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                self.push(TokKind::CharLit, start, line);
            }
            None => {
                self.push(TokKind::Punct, start, line);
            }
        }
    }

    fn number(&mut self) {
        let (start, line) = (self.pos, self.line);
        while let Some(b) = self.peek(0) {
            let c = b as char;
            if is_ident_continue(c) {
                // Digits, hex digits, suffixes (`u32`), exponent letters.
                let exp = c == 'e' || c == 'E';
                self.bump();
                // Signed exponent: consume the sign only when a digit follows.
                if exp
                    && matches!(self.peek(0), Some(b'+') | Some(b'-'))
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                {
                    self.bump();
                }
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // Fractional part; `0..10` and `1.max(2)` stop before the dot.
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, start, line);
    }

    fn ident(&mut self) {
        let (start, line) = (self.pos, self.line);
        while self
            .peek(0)
            .is_some_and(|b| is_ident_continue(b as char) || b >= 0x80)
        {
            self.bump();
        }
        self.push(TokKind::Ident, start, line);
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(b) = self.peek(0) {
            let c = b as char;
            if c == '\n' || c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some(b'/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some(b'*') {
                self.block_comment();
            } else if c == '"' || ((c == 'r' || c == 'b' || c == 'c') && self.try_string()) {
                if c == '"' {
                    let (start, line) = (self.pos, self.line);
                    self.bump();
                    self.string_body();
                    self.push(TokKind::Str, start, line);
                }
            } else if c == '\'' {
                self.quote();
            } else if c.is_ascii_digit() {
                self.number();
            } else if is_ident_start(c) || b >= 0x80 {
                self.ident();
            } else {
                let (start, line) = (self.pos, self.line);
                self.bump();
                self.push(TokKind::Punct, start, line);
            }
        }
        self.out
    }
}

/// Lexes a whole source file into a token stream. Never fails: unterminated
/// literals and comments extend to end of file, which is good enough for
/// linting (rustc rejects such files anyway).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let toks = kinds("fn foo(a: u32) -> f32 { 1.5e-3 }");
        assert!(toks.contains(&(TokKind::Ident, "foo".into())));
        assert!(toks.contains(&(TokKind::Num, "1.5e-3".into())));
        assert!(toks.contains(&(TokKind::Punct, "{".into())));
    }

    #[test]
    fn range_does_not_eat_dots() {
        let toks = kinds("0..10");
        assert_eq!(toks[0], (TokKind::Num, "0".into()));
        assert_eq!(toks[1], (TokKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokKind::Punct, ".".into()));
        assert_eq!(toks[3], (TokKind::Num, "10".into()));
    }

    #[test]
    fn method_call_on_number() {
        let toks = kinds("1.max(2)");
        assert_eq!(toks[0], (TokKind::Num, "1".into()));
        assert_eq!(toks[1], (TokKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokKind::Ident, "max".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let x = "unsafe // not a comment";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("unsafe")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unsafe"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r###"let x = r#"quote " inside"# ;"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("quote")));
        assert_eq!(toks.last().unwrap(), &(TokKind::Punct, ";".into()));
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds(r##"b"bytes" cr#"c raw"# br"raw bytes""##);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 3);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokKind::CharLit, "'x'".into())));
        assert!(toks.contains(&(TokKind::CharLit, "'\\n'".into())));
    }

    #[test]
    fn comment_kinds() {
        let toks = kinds("// plain\n/// doc\n//! inner\n/* block /* nested */ */\n/** docblock */");
        let got: Vec<TokKind> = toks.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            got,
            vec![
                TokKind::LineComment,
                TokKind::DocComment,
                TokKind::DocComment,
                TokKind::BlockComment,
                TokKind::DocComment,
            ]
        );
    }

    #[test]
    fn line_numbers_track_all_constructs() {
        let src = "let a = \"two\nlines\";\n/* spans\nlines */\nunsafe";
        let toks = lex(src);
        let last = toks.last().unwrap();
        assert_eq!(last.text, "unsafe");
        assert_eq!(last.line, 5);
    }

    #[test]
    fn r_identifier_is_not_a_raw_string() {
        let toks = kinds("let r = result; b(c)");
        assert!(toks.contains(&(TokKind::Ident, "r".into())));
        assert!(toks.contains(&(TokKind::Ident, "b".into())));
        assert!(toks.contains(&(TokKind::Ident, "c".into())));
    }
}
