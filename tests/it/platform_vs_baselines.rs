//! The headline comparative invariants of the evaluation (§6): LIFL completes
//! aggregation faster and cheaper than the serverless baseline, and never uses
//! more nodes than SL-H for the same load.

use lifl_baselines::{serverless, sl_hierarchical};
use lifl_core::platform::{LiflPlatform, RoundSpec};
use lifl_integration::spread_arrivals;
use lifl_types::{ClusterConfig, LiflConfig, ModelKind, SimTime};

fn lifl() -> LiflPlatform {
    LiflPlatform::new(ClusterConfig::default(), LiflConfig::default())
}

#[test]
fn lifl_act_within_cluster_capacity_beats_slh() {
    for n in [20usize, 40, 60, 80] {
        let spec = RoundSpec::simultaneous(ModelKind::ResNet152, n, SimTime::ZERO);
        let lifl_act = lifl().run_round(&spec).metrics.aggregation_completion_time;
        let slh_act = sl_hierarchical(ClusterConfig::default())
            .run_round(&spec)
            .metrics
            .aggregation_completion_time;
        assert!(
            lifl_act <= slh_act,
            "n={n}: LIFL {:.1}s vs SL-H {:.1}s",
            lifl_act.as_secs(),
            slh_act.as_secs()
        );
    }
}

#[test]
fn lifl_never_uses_more_nodes_than_slh() {
    for n in [10usize, 20, 50, 100] {
        let spec = RoundSpec::simultaneous(ModelKind::ResNet152, n, SimTime::ZERO);
        let lifl_nodes = lifl().run_round(&spec).metrics.nodes_used;
        let slh_nodes = sl_hierarchical(ClusterConfig::default())
            .run_round(&spec)
            .metrics
            .nodes_used;
        assert!(lifl_nodes <= slh_nodes, "n={n}");
    }
}

#[test]
fn lifl_cpu_beats_serverless_for_every_model() {
    for model in ModelKind::paper_models() {
        let spec = RoundSpec::new(model, spread_arrivals(30, 1.0));
        let lifl_cpu = lifl().run_round(&spec).metrics.cpu_time;
        let sl_cpu = serverless(ClusterConfig::default())
            .run_round(&spec)
            .metrics
            .cpu_time;
        assert!(
            lifl_cpu < sl_cpu,
            "{model}: LIFL {:.1}s vs SL {:.1}s",
            lifl_cpu.as_secs(),
            sl_cpu.as_secs()
        );
    }
}

#[test]
fn act_grows_with_load() {
    let mut previous = None;
    for n in [20usize, 60, 100] {
        let spec = RoundSpec::simultaneous(ModelKind::ResNet152, n, SimTime::ZERO);
        let act = lifl().run_round(&spec).metrics.aggregation_completion_time;
        if let Some(prev) = previous {
            assert!(act >= prev, "ACT should not shrink as load grows");
        }
        previous = Some(act);
    }
}
