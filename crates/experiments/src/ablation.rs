//! Ablation sweeps over LIFL's design parameters.
//!
//! DESIGN.md calls out three design choices whose values the paper fixes from
//! experience rather than from a reported sweep: the EWMA smoothing
//! coefficient α = 0.7 (§5.2), the leaf fan-in I = 2 (§5.2) and the BestFit
//! bin-packing policy (§5.1). These sweeps regenerate the evidence for each
//! choice so a downstream user can re-tune them for their own cluster.

use crate::report::format_table;
use lifl_core::hierarchy::EwmaEstimator;
use lifl_core::platform::{LiflPlatform, PlatformProfile, RoundSpec};
use lifl_types::{ClusterConfig, LiflConfig, ModelKind, PlacementPolicy, SimTime};
use serde::Serialize;

/// One row of the EWMA-α sweep: how the estimator trades responsiveness
/// (tracking a genuine load shift quickly) against stability (ignoring a
/// one-interval spike).
#[derive(Debug, Clone, Serialize)]
pub struct AlphaRow {
    /// The smoothing coefficient.
    pub alpha: f64,
    /// Estimate error right after a genuine step change (lower = more responsive).
    pub step_lag: f64,
    /// Peak deviation caused by a single-interval spike (lower = more stable).
    pub spike_overshoot: f64,
}

/// One row of the leaf fan-in sweep.
#[derive(Debug, Clone, Serialize)]
pub struct FanInRow {
    /// Client updates per leaf aggregator (I).
    pub fan_in: u32,
    /// Aggregation completion time at 20 concurrent ResNet-152 updates.
    pub act_seconds: f64,
    /// Aggregators created.
    pub aggregators_created: u64,
}

/// One row of the placement-policy sweep.
#[derive(Debug, Clone, Serialize)]
pub struct PlacementRow {
    /// The bin-packing policy.
    pub policy: String,
    /// Number of concurrently arriving updates.
    pub updates: usize,
    /// Aggregation completion time.
    pub act_seconds: f64,
    /// Nodes used.
    pub nodes_used: u64,
    /// Bytes moved between nodes.
    pub inter_node_bytes: u64,
}

/// The combined ablation result.
#[derive(Debug, Clone, Serialize)]
pub struct AblationResult {
    /// EWMA-α sweep rows.
    pub alpha: Vec<AlphaRow>,
    /// Leaf fan-in sweep rows.
    pub fan_in: Vec<FanInRow>,
    /// Placement policy sweep rows.
    pub placement: Vec<PlacementRow>,
}

/// Sweeps the EWMA smoothing coefficient.
///
/// The synthetic load trace has a genuine step (10 → 40 pending updates) and,
/// later, a one-interval spike (40 → 120 → 40). A good α tracks the step
/// within a few re-plan periods while damping most of the spike — the
/// trade-off that led the authors to α = 0.7.
pub fn alpha_sweep() -> Vec<AlphaRow> {
    let alphas = [0.0, 0.3, 0.5, 0.7, 0.9];
    alphas
        .iter()
        .map(|&alpha| {
            let mut estimator = EwmaEstimator::new(alpha);
            // Warm up at the low level.
            for _ in 0..10 {
                estimator.observe(10.0);
            }
            // Genuine step change to 40: measure how far the estimate lags
            // after two re-plan periods.
            estimator.observe(40.0);
            let after_step = estimator.observe(40.0);
            let step_lag = (40.0 - after_step).abs();
            // Single-interval spike to 120, then back to 40: measure overshoot.
            let spiked = estimator.observe(120.0);
            let spike_overshoot = (spiked - 40.0).max(0.0);
            for _ in 0..5 {
                estimator.observe(40.0);
            }
            AlphaRow {
                alpha,
                step_lag,
                spike_overshoot,
            }
        })
        .collect()
}

/// Sweeps the leaf fan-in I at 20 concurrent ResNet-152 updates.
pub fn fan_in_sweep() -> Vec<FanInRow> {
    [1u32, 2, 4, 8, 20]
        .iter()
        .map(|&fan_in| {
            let config = LiflConfig {
                leaf_fan_in: fan_in,
                ..LiflConfig::default()
            };
            let mut profile = PlatformProfile::lifl(ClusterConfig::default(), &config);
            profile.warm_across_rounds = false;
            let mut platform = LiflPlatform::with_profile(profile);
            let spec = RoundSpec::simultaneous(ModelKind::ResNet152, 20, SimTime::ZERO);
            let report = platform.run_round(&spec);
            FanInRow {
                fan_in,
                act_seconds: report.metrics.aggregation_completion_time.as_secs(),
                aggregators_created: report.metrics.aggregators_created,
            }
        })
        .collect()
}

/// Sweeps the placement policy at 20/60/100 concurrent ResNet-152 updates.
pub fn placement_sweep() -> Vec<PlacementRow> {
    let mut rows = Vec::new();
    for policy in [
        PlacementPolicy::BestFit,
        PlacementPolicy::FirstFit,
        PlacementPolicy::WorstFit,
    ] {
        for updates in [20usize, 60, 100] {
            let config = LiflConfig {
                placement: policy,
                ..LiflConfig::default()
            };
            let mut profile = PlatformProfile::lifl(ClusterConfig::default(), &config);
            profile.warm_across_rounds = false;
            let mut platform = LiflPlatform::with_profile(profile);
            let spec = RoundSpec::simultaneous(ModelKind::ResNet152, updates, SimTime::ZERO);
            let report = platform.run_round(&spec);
            rows.push(PlacementRow {
                policy: format!("{policy:?}"),
                updates,
                act_seconds: report.metrics.aggregation_completion_time.as_secs(),
                nodes_used: report.metrics.nodes_used,
                inter_node_bytes: report.metrics.inter_node_bytes,
            });
        }
    }
    rows
}

/// Runs every sweep.
pub fn run() -> AblationResult {
    AblationResult {
        alpha: alpha_sweep(),
        fan_in: fan_in_sweep(),
        placement: placement_sweep(),
    }
}

/// Formats the sweeps as three tables.
pub fn format(result: &AblationResult) -> String {
    let mut out =
        String::from("Ablation: EWMA smoothing coefficient (step lag vs spike overshoot)\n");
    out.push_str(&format_table(
        &["alpha", "step lag", "spike overshoot"],
        &result
            .alpha
            .iter()
            .map(|r| {
                vec![
                    format!("{:.1}", r.alpha),
                    format!("{:.1}", r.step_lag),
                    format!("{:.1}", r.spike_overshoot),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out.push_str("\nAblation: leaf fan-in I (20 concurrent ResNet-152 updates)\n");
    out.push_str(&format_table(
        &["I", "ACT (s)", "# agg created"],
        &result
            .fan_in
            .iter()
            .map(|r| {
                vec![
                    r.fan_in.to_string(),
                    format!("{:.1}", r.act_seconds),
                    r.aggregators_created.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out.push_str("\nAblation: placement policy\n");
    out.push_str(&format_table(
        &["policy", "updates", "ACT (s)", "# nodes", "inter-node MB"],
        &result
            .placement
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    r.updates.to_string(),
                    format!("{:.1}", r.act_seconds),
                    r.nodes_used.to_string(),
                    format!("{:.0}", r.inter_node_bytes as f64 / (1024.0 * 1024.0)),
                ]
            })
            .collect::<Vec<_>>(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_trades_responsiveness_for_stability() {
        let rows = alpha_sweep();
        assert_eq!(rows.len(), 5);
        let by_alpha = |a: f64| rows.iter().find(|r| (r.alpha - a).abs() < 1e-9).unwrap();
        // α = 0 follows observations instantly: no lag, full spike.
        let reactive = by_alpha(0.0);
        assert!(reactive.step_lag < 1e-9);
        assert!(reactive.spike_overshoot > 70.0);
        // α = 0.9 is sluggish: large lag, small spike overshoot.
        let sluggish = by_alpha(0.9);
        assert!(sluggish.step_lag > reactive.step_lag);
        assert!(sluggish.spike_overshoot < reactive.spike_overshoot);
        // The paper's α = 0.7 sits between the extremes on both axes.
        let paper = by_alpha(0.7);
        assert!(paper.step_lag > reactive.step_lag && paper.step_lag < sluggish.step_lag);
        assert!(
            paper.spike_overshoot < reactive.spike_overshoot
                && paper.spike_overshoot > sluggish.spike_overshoot
        );
    }

    #[test]
    fn small_fan_in_maximises_parallelism() {
        let rows = fan_in_sweep();
        let by_fan_in = |i: u32| rows.iter().find(|r| r.fan_in == i).unwrap();
        // I = 2 (the paper's choice) completes no slower than a single giant leaf.
        assert!(by_fan_in(2).act_seconds <= by_fan_in(20).act_seconds + 1e-9);
        // Larger fan-in always needs fewer (or equal) aggregators.
        assert!(by_fan_in(20).aggregators_created <= by_fan_in(2).aggregators_created);
        assert!(by_fan_in(2).aggregators_created <= by_fan_in(1).aggregators_created);
    }

    #[test]
    fn bestfit_uses_fewest_nodes_and_least_cross_traffic() {
        let rows = placement_sweep();
        let cell = |policy: &str, updates: usize| {
            rows.iter()
                .find(|r| r.policy == policy && r.updates == updates)
                .unwrap()
        };
        for updates in [20usize, 60] {
            let best = cell("BestFit", updates);
            let worst = cell("WorstFit", updates);
            assert!(best.nodes_used <= worst.nodes_used);
            assert!(best.inter_node_bytes <= worst.inter_node_bytes);
            assert!(best.act_seconds <= worst.act_seconds + 1e-9);
        }
        // At 100 updates every node is needed regardless of policy.
        assert_eq!(
            cell("BestFit", 100).nodes_used,
            cell("WorstFit", 100).nodes_used
        );
        let text = format(&run());
        assert!(text.contains("BestFit"));
        assert!(text.contains("alpha"));
    }
}
