//! L7 protocol processing and payload transformation (Appendix C).
//!
//! On the receive path the gateway first lets the kernel do TCP/IP protocol
//! processing, then performs the application-layer work: parsing the L7
//! protocol the clients speak (gRPC over HTTP/2 or MQTT), extracting the
//! tensor-encoded model update, deserialising it and converting it from the
//! tensor data type to the flat array layout the shared-memory store holds
//! (the paper's `tensor → NumpyArray` conversion, needed because Python's
//! `multiprocessing` shared memory cannot hold tensors). On the transmit path
//! the inverse transformations run.
//!
//! This module breaks that per-update work into named steps so the experiment
//! harness can report where gateway CPU goes and how the choice of L7
//! protocol shifts the cost.

use lifl_types::{CpuCycles, ModelKind, SimDuration};
use serde::{Deserialize, Serialize};

/// The application-layer protocols clients may use to reach the gateway.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum L7Protocol {
    /// gRPC over HTTP/2 (the paper's serverful baseline and Flame default).
    #[default]
    Grpc,
    /// MQTT (a lighter-weight pub/sub framing common on mobile clients).
    Mqtt,
}

impl L7Protocol {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            L7Protocol::Grpc => "gRPC",
            L7Protocol::Mqtt => "MQTT",
        }
    }
}

impl std::fmt::Display for L7Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One named step of the RX/TX payload processing.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ProcessingStep {
    /// Step name ("l7-parse", "deserialize", "type-convert", "shm-write", ...).
    pub name: &'static str,
    /// Latency contributed by the step.
    pub latency: SimDuration,
    /// CPU cycles contributed by the step.
    pub cpu: CpuCycles,
}

/// The full breakdown of one direction (RX or TX) of payload processing.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct ProcessingBreakdown {
    /// The ordered steps.
    pub steps: Vec<ProcessingStep>,
}

impl ProcessingBreakdown {
    /// Total latency across steps.
    pub fn latency(&self) -> SimDuration {
        self.steps
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.latency)
    }

    /// Total CPU cycles across steps.
    pub fn cpu(&self) -> CpuCycles {
        CpuCycles(self.steps.iter().map(|s| s.cpu.0).sum())
    }

    /// The latency of one named step (zero if absent).
    pub fn latency_of(&self, name: &str) -> SimDuration {
        self.steps
            .iter()
            .filter(|s| s.name == name)
            .fold(SimDuration::ZERO, |acc, s| acc + s.latency)
    }
}

/// Cost model of the application-layer payload processing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolModel {
    /// gRPC/HTTP2 framing + protobuf envelope parsing, seconds per MiB.
    pub grpc_parse_per_mib: f64,
    /// MQTT framing parsing, seconds per MiB (cheaper: no HTTP/2, no protobuf envelope).
    pub mqtt_parse_per_mib: f64,
    /// Tensor deserialisation, seconds per MiB.
    pub deserialize_per_mib: f64,
    /// Tensor → flat array conversion, seconds per MiB.
    pub convert_per_mib: f64,
    /// Shared-memory write (or read on TX), seconds per MiB.
    pub shm_copy_per_mib: f64,
    /// CPU cycles per second of processing (the work is CPU-bound).
    pub cycles_per_busy_second: f64,
}

impl Default for ProtocolModel {
    fn default() -> Self {
        ProtocolModel {
            grpc_parse_per_mib: 0.0009,
            mqtt_parse_per_mib: 0.0004,
            deserialize_per_mib: 0.0008,
            convert_per_mib: 0.0005,
            shm_copy_per_mib: 0.0003,
            cycles_per_busy_second: 2.8e9,
        }
    }
}

impl ProtocolModel {
    fn step(&self, name: &'static str, secs_per_mib: f64, mib: f64) -> ProcessingStep {
        let latency = SimDuration::from_secs(secs_per_mib * mib);
        ProcessingStep {
            name,
            latency,
            cpu: CpuCycles(latency.as_secs() * self.cycles_per_busy_second),
        }
    }

    /// The RX-path breakdown for one update of `model` arriving over `protocol`:
    /// L7 parse → deserialise → type-convert → shared-memory write.
    pub fn rx_breakdown(&self, protocol: L7Protocol, model: ModelKind) -> ProcessingBreakdown {
        let mib = model.update_mib();
        let parse = match protocol {
            L7Protocol::Grpc => self.step("l7-parse", self.grpc_parse_per_mib, mib),
            L7Protocol::Mqtt => self.step("l7-parse", self.mqtt_parse_per_mib, mib),
        };
        ProcessingBreakdown {
            steps: vec![
                parse,
                self.step("deserialize", self.deserialize_per_mib, mib),
                self.step("type-convert", self.convert_per_mib, mib),
                self.step("shm-write", self.shm_copy_per_mib, mib),
            ],
        }
    }

    /// The TX-path breakdown (the reverse transformations, Appendix C):
    /// shared-memory read → type-convert → serialise → L7 frame.
    pub fn tx_breakdown(&self, protocol: L7Protocol, model: ModelKind) -> ProcessingBreakdown {
        let mib = model.update_mib();
        let frame = match protocol {
            L7Protocol::Grpc => self.step("l7-frame", self.grpc_parse_per_mib, mib),
            L7Protocol::Mqtt => self.step("l7-frame", self.mqtt_parse_per_mib, mib),
        };
        ProcessingBreakdown {
            steps: vec![
                self.step("shm-read", self.shm_copy_per_mib, mib),
                self.step("type-convert", self.convert_per_mib, mib),
                self.step("serialize", self.deserialize_per_mib, mib),
                frame,
            ],
        }
    }

    /// The saving from LIFL's *consolidated, one-time* payload processing
    /// (§4.2): because only the gateway touches the payload, `aggregators`
    /// co-located consumers skip their own RX processing. Returns the CPU
    /// cycles avoided per update compared with every consumer parsing the
    /// payload itself (the duplicate processing the baseline pays).
    pub fn consolidation_saving(
        &self,
        protocol: L7Protocol,
        model: ModelKind,
        aggregators: u32,
    ) -> CpuCycles {
        let per_consumer = self.rx_breakdown(protocol, model).cpu();
        CpuCycles(per_consumer.0 * aggregators.saturating_sub(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rx_breakdown_has_the_appendix_c_steps_in_order() {
        let model = ProtocolModel::default();
        let rx = model.rx_breakdown(L7Protocol::Grpc, ModelKind::ResNet152);
        let names: Vec<&str> = rx.steps.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["l7-parse", "deserialize", "type-convert", "shm-write"]
        );
        assert!(rx.latency().as_secs() > 0.0);
        assert!(rx.cpu().as_giga() > 0.0);
        assert!(rx.latency_of("deserialize").as_secs() > 0.0);
        assert_eq!(rx.latency_of("missing"), SimDuration::ZERO);
    }

    #[test]
    fn tx_is_the_reverse_of_rx_and_costs_the_same_total() {
        let model = ProtocolModel::default();
        let rx = model.rx_breakdown(L7Protocol::Grpc, ModelKind::ResNet34);
        let tx = model.tx_breakdown(L7Protocol::Grpc, ModelKind::ResNet34);
        assert!((rx.latency().as_secs() - tx.latency().as_secs()).abs() < 1e-12);
        assert_eq!(tx.steps.first().unwrap().name, "shm-read");
        assert_eq!(tx.steps.last().unwrap().name, "l7-frame");
    }

    #[test]
    fn mqtt_parsing_is_cheaper_than_grpc() {
        let model = ProtocolModel::default();
        for kind in ModelKind::paper_models() {
            let grpc = model.rx_breakdown(L7Protocol::Grpc, kind).latency();
            let mqtt = model.rx_breakdown(L7Protocol::Mqtt, kind).latency();
            assert!(
                mqtt < grpc,
                "{kind}: MQTT {mqtt:?} should be under gRPC {grpc:?}"
            );
        }
        assert_eq!(L7Protocol::Mqtt.to_string(), "MQTT");
    }

    #[test]
    fn costs_scale_with_model_size() {
        let model = ProtocolModel::default();
        let small = model.rx_breakdown(L7Protocol::Grpc, ModelKind::ResNet18);
        let large = model.rx_breakdown(L7Protocol::Grpc, ModelKind::ResNet152);
        assert!(large.latency().as_secs() > 4.0 * small.latency().as_secs());
        assert!(large.cpu().0 > 4.0 * small.cpu().0);
    }

    #[test]
    fn consolidation_saves_processing_for_every_extra_consumer() {
        let model = ProtocolModel::default();
        let none = model.consolidation_saving(L7Protocol::Grpc, ModelKind::ResNet152, 1);
        assert_eq!(none.0, 0.0, "a single consumer saves nothing");
        let five = model.consolidation_saving(L7Protocol::Grpc, ModelKind::ResNet152, 5);
        let per_consumer = model
            .rx_breakdown(L7Protocol::Grpc, ModelKind::ResNet152)
            .cpu();
        assert!((five.0 - 4.0 * per_consumer.0).abs() < 1e-3);
        assert_eq!(
            model
                .consolidation_saving(L7Protocol::Grpc, ModelKind::ResNet18, 0)
                .0,
            0.0
        );
    }
}
