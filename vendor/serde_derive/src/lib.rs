//! Minimal offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! workspace's `serde` shim (whose data model is a JSON-like `Value`). The
//! macro is written directly against `proc_macro` — the environment has no
//! `syn`/`quote` — so it hand-parses the item declaration. Supported shapes
//! cover everything this workspace derives:
//!
//! - structs with named fields (including `#[serde(skip)]` fields, which are
//!   omitted on serialize and `Default`-filled on deserialize)
//! - tuple structs (single-field newtypes serialize as their inner value,
//!   wider tuples as arrays)
//! - enums with unit, struct, and tuple variants (externally tagged)
//!
//! Generics are intentionally unsupported; deriving on a generic type is a
//! compile error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field of a struct or struct variant.
struct Field {
    name: String,
    skip: bool,
}

/// The shape of an enum variant.
enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

/// The parsed item shape.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Token cursor over the derive input.
struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let tok = self.tokens.get(self.pos).cloned();
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` attribute groups, returning true if any of them was
    /// exactly `#[serde(skip)]`.
    fn skip_attributes(&mut self) -> bool {
        let mut saw_skip = false;
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            if let Some(TokenTree::Group(group)) = self.next() {
                if group.delimiter() == Delimiter::Bracket && is_serde_skip(group.stream()) {
                    saw_skip = true;
                }
            }
        }
        saw_skip
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)` visibility modifiers.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(ident)) = self.peek() {
            if ident.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(group)) = self.peek() {
                    if group.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    /// Consumes an identifier or reports what was found instead.
    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(ident)) => Ok(ident.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Consumes tokens until a top-level comma (tracking `<`/`>` nesting so
    /// commas inside generic arguments don't terminate early), eating the
    /// comma itself.
    fn skip_until_comma(&mut self) {
        let mut angle_depth: i32 = 0;
        while let Some(tok) = self.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth <= 0 => {
                        self.next();
                        return;
                    }
                    _ => {}
                }
            }
            self.next();
        }
    }
}

/// Whether a bracket-group body is `serde(skip)`.
fn is_serde_skip(stream: TokenStream) -> bool {
    let mut iter = stream.into_iter();
    match (iter.next(), iter.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args))) => {
            name.to_string() == "serde"
                && args
                    .stream()
                    .into_iter()
                    .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Parses the fields of a `{ ... }` body into named fields.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cursor.at_end() {
        let skip = cursor.skip_attributes();
        if cursor.at_end() {
            break;
        }
        cursor.skip_visibility();
        let name = cursor.expect_ident()?;
        match cursor.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        cursor.skip_until_comma();
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

/// Counts the fields of a `( ... )` tuple body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cursor = Cursor::new(stream);
    let mut arity = 0;
    while !cursor.at_end() {
        cursor.skip_attributes();
        if cursor.at_end() {
            break;
        }
        cursor.skip_visibility();
        arity += 1;
        cursor.skip_until_comma();
    }
    arity
}

/// Parses the variants of an enum body.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cursor.at_end() {
        cursor.skip_attributes();
        if cursor.at_end() {
            break;
        }
        let name = cursor.expect_ident()?;
        let kind = match cursor.peek() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let body = group.stream();
                cursor.next();
                VariantKind::Named(parse_named_fields(body)?)
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let body = group.stream();
                cursor.next();
                VariantKind::Tuple(count_tuple_fields(body))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        cursor.skip_until_comma();
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

/// Parses the derive input item (struct or enum declaration).
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cursor = Cursor::new(input);
    cursor.skip_attributes();
    cursor.skip_visibility();
    let keyword = cursor.expect_ident()?;
    let name = cursor.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = cursor.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde_derive shim does not support generic type `{name}`"
            ));
        }
    }
    match keyword.as_str() {
        "struct" => match cursor.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(group.stream())?,
                })
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(group.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match cursor.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum {
                    name,
                    variants: parse_variants(group.stream())?,
                })
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Renders an error as a `compile_error!` invocation.
fn compile_error(message: &str) -> TokenStream {
    let escaped = message.replace('\\', "\\\\").replace('"', "\\\"");
    format!("::core::compile_error!(\"{escaped}\");")
        .parse()
        .expect("compile_error tokens")
}

/// Derives `serde::Serialize` (shim) for structs and enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_serialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive generated bad tokens: {e}"))),
        Err(message) => compile_error(&message),
    }
}

/// Derives `serde::Deserialize` (shim) for structs and enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive generated bad tokens: {e}"))),
        Err(message) => compile_error(&message),
    }
}

fn generate_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let pushes: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{}])\n\
                     }}\n\
                 }}",
                pushes.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Named(fields) => {
                            let binders: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Object(::std::vec![{entries}]))]),",
                                binds = binders.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                        VariantKind::Tuple(arity) => {
                            let binders: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let inner = if *arity == 1 {
                                "::serde::Serialize::to_value(__f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!(
                                    "::serde::Value::Array(::std::vec![{}])",
                                    items.join(", ")
                                )
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), {inner})]),",
                                binds = binders.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// Generates the expression that reads named fields out of `__value` into a
/// struct/variant literal body.
fn named_field_readers(owner: &str, fields: &[Field], source: &str) -> String {
    fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{}: ::core::default::Default::default(),", f.name)
            } else {
                format!(
                    "{0}: match {source}.field(\"{0}\") {{\n\
                         ::core::option::Option::Some(__field) => ::serde::Deserialize::from_value(__field)?,\n\
                         ::core::option::Option::None => return ::core::result::Result::Err(::serde::DeError::new(\"missing field `{0}` in `{owner}`\")),\n\
                     }},",
                    f.name
                )
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn generate_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let readers = named_field_readers(name, fields, "value");
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         ::core::result::Result::Ok({name} {{\n{readers}\n}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
                )
            } else {
                let readers: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "match value {{\n\
                         ::serde::Value::Array(__items) if __items.len() == {arity} => ::core::result::Result::Ok({name}({readers})),\n\
                         _ => ::core::result::Result::Err(::serde::DeError::new(\"expected {arity}-element array for `{name}`\")),\n\
                     }}",
                    readers = readers.join(", ")
                )
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "#[automatically_derived]\n\
             impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_value: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                     ::core::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::core::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Named(fields) => {
                            let readers =
                                named_field_readers(&format!("{name}::{vname}"), fields, "__inner");
                            Some(format!(
                                "\"{vname}\" => ::core::result::Result::Ok({name}::{vname} {{\n{readers}\n}}),"
                            ))
                        }
                        VariantKind::Tuple(arity) => {
                            let body = if *arity == 1 {
                                format!(
                                    "::core::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__inner)?))"
                                )
                            } else {
                                let readers: Vec<String> = (0..*arity)
                                    .map(|i| {
                                        format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                    })
                                    .collect();
                                format!(
                                    "match __inner {{\n\
                                         ::serde::Value::Array(__items) if __items.len() == {arity} => ::core::result::Result::Ok({name}::{vname}({readers})),\n\
                                         _ => ::core::result::Result::Err(::serde::DeError::new(\"expected {arity}-element array for `{name}::{vname}`\")),\n\
                                     }}",
                                    readers = readers.join(", ")
                                )
                            };
                            Some(format!("\"{vname}\" => {body},"))
                        }
                    }
                })
                .collect();
            let unit_block = if unit_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::core::option::Option::Some(__name) = value.as_str() {{\n\
                         return match __name {{\n{}\n\
                             __other => ::core::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n\
                         }};\n\
                     }}",
                    unit_arms.join("\n")
                )
            };
            let data_block = if data_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "if let ::serde::Value::Object(__fields) = value {{\n\
                         if __fields.len() == 1 {{\n\
                             let (__tag, __inner) = &__fields[0];\n\
                             return match __tag.as_str() {{\n{}\n\
                                 __other => ::core::result::Result::Err(::serde::DeError::new(::std::format!(\"unknown variant `{{__other}}` for `{name}`\"))),\n\
                             }};\n\
                         }}\n\
                     }}",
                    data_arms.join("\n")
                )
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                         {unit_block}\n\
                         {data_block}\n\
                         ::core::result::Result::Err(::serde::DeError::new(\"invalid value for enum `{name}`\"))\n\
                     }}\n\
                 }}"
            )
        }
    }
}
