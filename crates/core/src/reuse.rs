//! Opportunistic reuse of aggregator runtimes (§5.3).
//!
//! LIFL's aggregator runtimes are homogeneous (same code and libraries), so an
//! idle leaf can be converted into a middle aggregator and an idle middle into
//! the top aggregator, avoiding the cascading cold starts of scaling a
//! function chain.

use lifl_types::{AggregatorRole, InstanceId, NodeId, SimTime};

/// A warm runtime available for reuse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmRuntime {
    /// The instance.
    pub instance: InstanceId,
    /// The node it lives on.
    pub node: NodeId,
    /// Role it last played.
    pub last_role: AggregatorRole,
    /// When it became idle.
    pub idle_since: SimTime,
}

/// Tracks idle-but-warm runtimes and serves reuse requests.
#[derive(Debug, Clone, Default)]
pub struct ReusePool {
    idle: Vec<WarmRuntime>,
    reuses: u64,
}

impl ReusePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a runtime idle and available for reuse.
    pub fn park(&mut self, runtime: WarmRuntime) {
        self.idle.push(runtime);
    }

    /// Takes the earliest-idle warm runtime on `node`, promoting it to `role`.
    /// Returns `None` if no warm runtime is available on that node.
    pub fn acquire(
        &mut self,
        node: NodeId,
        role: AggregatorRole,
        now: SimTime,
    ) -> Option<WarmRuntime> {
        let best = self
            .idle
            .iter()
            .enumerate()
            .filter(|(_, r)| r.node == node && r.idle_since <= now)
            .min_by_key(|(_, r)| r.idle_since)
            .map(|(i, _)| i)?;
        let mut runtime = self.idle.swap_remove(best);
        runtime.last_role = role;
        self.reuses += 1;
        Some(runtime)
    }

    /// Number of idle runtimes currently parked.
    pub fn idle_count(&self) -> usize {
        self.idle.len()
    }

    /// Number of reuse promotions served.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Clears the pool (for example at the start of an experiment).
    pub fn clear(&mut self) {
        self.idle.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime(id: u64, node: u64, idle_at: f64) -> WarmRuntime {
        WarmRuntime {
            instance: InstanceId::new(id),
            node: NodeId::new(node),
            last_role: AggregatorRole::Leaf,
            idle_since: SimTime::from_secs(idle_at),
        }
    }

    #[test]
    fn reuses_earliest_idle_leaf_on_same_node() {
        let mut pool = ReusePool::new();
        pool.park(runtime(1, 0, 10.0));
        pool.park(runtime(2, 0, 5.0));
        pool.park(runtime(3, 1, 1.0));
        let picked = pool
            .acquire(
                NodeId::new(0),
                AggregatorRole::Middle,
                SimTime::from_secs(20.0),
            )
            .unwrap();
        assert_eq!(picked.instance, InstanceId::new(2));
        assert_eq!(picked.last_role, AggregatorRole::Middle);
        assert_eq!(pool.idle_count(), 2);
        assert_eq!(pool.reuses(), 1);
    }

    #[test]
    fn does_not_reuse_across_nodes_or_future_runtimes() {
        let mut pool = ReusePool::new();
        pool.park(runtime(1, 1, 10.0));
        assert!(pool
            .acquire(
                NodeId::new(0),
                AggregatorRole::Middle,
                SimTime::from_secs(20.0)
            )
            .is_none());
        // Not idle yet at t=5.
        assert!(pool
            .acquire(
                NodeId::new(1),
                AggregatorRole::Middle,
                SimTime::from_secs(5.0)
            )
            .is_none());
        assert!(pool
            .acquire(
                NodeId::new(1),
                AggregatorRole::Top,
                SimTime::from_secs(10.0)
            )
            .is_some());
        pool.clear();
        assert_eq!(pool.idle_count(), 0);
    }
}
