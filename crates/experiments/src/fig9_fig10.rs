//! Figures 9 and 10: end-to-end FL workloads.
//!
//! Fig. 9: time-to-accuracy and cost-to-accuracy for SF, SL and LIFL on the
//! ResNet-18 (120 active mobile clients) and ResNet-152 (15 always-on server
//! clients) workloads. Fig. 10: time series of update arrival rate, active
//! aggregators and per-round CPU cost for the same runs.

use crate::report::format_table;
use lifl_baselines::{
    serverful_with_codec, serverless_with_codec, WorkloadDriver, WorkloadOutcome, WorkloadSetup,
};
use lifl_core::cluster::ClusterBuilder;
use lifl_core::platform::{LiflPlatform, PlatformProfile};
use lifl_core::session::{SessionBuilder, Update};
use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::DenseModel;
use lifl_types::{ClientId, ClusterConfig, CodecKind, LiflConfig, ModelKind, Topology};
use serde::Serialize;

/// Summary of one (workload, system) run.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadSummary {
    /// Workload model.
    pub model: String,
    /// System label.
    pub system: String,
    /// Wire codec every update travelled with.
    pub codec: String,
    /// Wall-clock hours to the target accuracy (None if never reached).
    pub time_to_accuracy_h: Option<f64>,
    /// CPU hours to the target accuracy (None if never reached).
    pub cpu_to_accuracy_h: Option<f64>,
    /// Final accuracy after all rounds.
    pub final_accuracy: f64,
    /// Total simulated wall-clock hours.
    pub total_wall_h: f64,
    /// Total aggregation-service CPU hours.
    pub total_cpu_h: f64,
}

/// The full Fig. 9 / Fig. 10 result for one workload.
#[derive(Debug)]
pub struct WorkloadComparison {
    /// The target accuracy used for the "time to accuracy" headline.
    pub target_accuracy: f64,
    /// Summary per system.
    pub summaries: Vec<WorkloadSummary>,
    /// Full curves per system (for Fig. 10).
    pub outcomes: Vec<WorkloadOutcome>,
}

/// Runs one workload (ResNet-18 or ResNet-152 setup) on SF, SL and LIFL with
/// the default lossless codec.
///
/// `rounds` controls simulation length; `target_accuracy` is the accuracy
/// level the headline numbers are reported at (the paper uses 70% on FEMNIST;
/// the synthetic task converges to a different absolute scale, so callers pick
/// a level both systems reach, keeping the comparison meaningful).
pub fn run_workload(model: ModelKind, rounds: usize, target_accuracy: f64) -> WorkloadComparison {
    run_workload_with_codec(model, rounds, target_accuracy, CodecKind::Identity)
}

/// [`run_workload`] with every client update travelling `codec` — both at
/// the algorithm level (error-feedback encoding in the FL driver) and at the
/// system level (every baseline's transfer costs priced off the encoded
/// bytes), so the time-to-accuracy curves expose codec × system
/// interactions.
pub fn run_workload_with_codec(
    model: ModelKind,
    rounds: usize,
    target_accuracy: f64,
    codec: CodecKind,
) -> WorkloadComparison {
    let setup = match model {
        ModelKind::ResNet152 => WorkloadSetup::resnet152(rounds),
        _ => WorkloadSetup::resnet18(rounds),
    }
    .with_codec(codec);
    let driver = WorkloadDriver::new(setup.clone());
    let cluster = ClusterConfig::default();

    let mut lifl = LiflPlatform::with_profile(
        PlatformProfile::lifl(cluster.clone(), &LiflConfig::default()).with_codec(codec),
    );
    let mut sf = serverful_with_codec(cluster.clone(), codec);
    let mut sl = serverless_with_codec(cluster, codec);

    let outcomes = vec![
        driver.run(&mut sf),
        driver.run(&mut sl),
        driver.run(&mut lifl),
    ];
    let summaries = outcomes
        .iter()
        .map(|o| WorkloadSummary {
            model: setup.model.to_string(),
            system: o.system.clone(),
            codec: codec.label(),
            time_to_accuracy_h: o.time_to_accuracy_hours(target_accuracy),
            cpu_to_accuracy_h: o.cpu_to_accuracy_hours(target_accuracy),
            final_accuracy: o.final_accuracy,
            total_wall_h: o.total_wall.as_hours(),
            total_cpu_h: o.total_cpu.as_hours(),
        })
        .collect();
    WorkloadComparison {
        target_accuracy,
        summaries,
        outcomes,
    }
}

/// The ROADMAP codec × baseline sweep: runs the workload once per codec of
/// the ablation set, on all three systems, so time-to-accuracy curves show
/// codec × system interactions (quantization shortens every system's rounds,
/// but the broker-bound SL baseline gains the most wall-clock, while the
/// accuracy cost is shared).
pub fn codec_sweep(
    model: ModelKind,
    rounds: usize,
    target_accuracy: f64,
) -> Vec<(CodecKind, WorkloadComparison)> {
    CodecKind::ablation_set()
        .into_iter()
        .map(|codec| {
            (
                codec,
                run_workload_with_codec(model, rounds, target_accuracy, codec),
            )
        })
        .collect()
}

/// Formats the codec × system sweep as one table.
pub fn format_codec_sweep(sweep: &[(CodecKind, WorkloadComparison)]) -> String {
    let fmt_opt = |v: Option<f64>| {
        v.map(|x| format!("{x:.2}"))
            .unwrap_or_else(|| "-".to_string())
    };
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .flat_map(|(_, comparison)| &comparison.summaries)
        .map(|s| {
            vec![
                s.codec.clone(),
                s.system.clone(),
                fmt_opt(s.time_to_accuracy_h),
                fmt_opt(s.cpu_to_accuracy_h),
                format!("{:.1}", s.final_accuracy),
                format!("{:.2}", s.total_wall_h),
                format!("{:.2}", s.total_cpu_h),
            ]
        })
        .collect();
    let target = sweep.first().map(|(_, c)| c.target_accuracy).unwrap_or(0.0);
    let mut out = format!("Fig. 9 codec sweep: time/cost to {target:.0}% accuracy per codec\n");
    out.push_str(&format_table(
        &[
            "codec",
            "system",
            "TTA (h)",
            "CPU-to-acc (h)",
            "final acc (%)",
            "wall (h)",
            "CPU (h)",
        ],
        &rows,
    ));
    out
}

/// One row of the single-node-vs-cluster sweep: the same aggregation round
/// driven by one in-process session versus a federation of N sessions
/// composed gateway-to-gateway over `Update::RemoteBytes`.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterSweepRow {
    /// Wire codec every update (and every hop) travelled with.
    pub codec: String,
    /// Machines the global tree was split across (1 = everything on the
    /// top-hosting node).
    pub nodes: usize,
    /// The global tree.
    pub topology: String,
    /// Payload bytes that crossed machines during the round.
    pub inter_node_wire_bytes: u64,
    /// Modelled wall-clock of the *remote* hops serialised through the top
    /// gateway (the top-hosting node's shared-memory hop is concurrent and
    /// excluded, matching the simulator's top-stage rule).
    pub hop_latency_s: f64,
    /// Whether the federated aggregate was bit-exact with the single-session
    /// drive (it always must be; recorded so the sweep output proves it).
    pub bit_exact: bool,
}

/// The ROADMAP single-node-vs-cluster sweep: drives the *same* round — same
/// updates, same global tree — through one in-process `Session` and through
/// an N-node `Cluster`, for every ablation codec and every requested node
/// count. The aggregate never changes (bit-exact by construction); what the
/// sweep exposes is the transport bill of federating: how many bytes cross
/// machines and what the hops cost, and how hard quantized wire forms cut
/// both.
pub fn cluster_sweep(dim: usize, node_counts: &[usize]) -> Vec<ClusterSweepRow> {
    let mut rows = Vec::new();
    for &nodes in node_counts {
        let nodes = nodes.max(1);
        // Each machine drives a [2, 2] subtree; the top fan-in is the
        // machine count.
        let topology = Topology::new(vec![2, 2, nodes]).expect("sweep topology");
        let updates: Vec<ModelUpdate> = (0..topology.total_updates())
            .map(|i| {
                let values: Vec<f32> = (0..dim)
                    .map(|d| ((i * dim + d * 11) % 103) as f32 * 0.019 - 0.95)
                    .collect();
                ModelUpdate::from_client(
                    ClientId::new(i as u64),
                    DenseModel::from_vec(values),
                    (i + 1) as u64,
                )
            })
            .collect();
        for codec in CodecKind::ablation_set() {
            let mut session = SessionBuilder::new()
                .topology(topology.clone())
                .codec(codec)
                .build()
                .expect("session");
            session
                .ingest_all(updates.iter().cloned().map(Update::Dense))
                .expect("session ingest");
            let single = session.drive().expect("session drive");

            let mut cluster = ClusterBuilder::new()
                .topology(topology.clone())
                .codec(codec)
                .build()
                .expect("cluster");
            cluster
                .ingest_all(updates.iter().cloned().map(Update::Dense))
                .expect("cluster ingest");
            let federated = cluster.drive().expect("cluster drive");

            let bit_exact = single.update.samples == federated.update.samples
                && single
                    .update
                    .model
                    .as_slice()
                    .iter()
                    .zip(federated.update.model.as_slice())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            rows.push(ClusterSweepRow {
                codec: codec.label(),
                nodes,
                topology: topology.to_string(),
                inter_node_wire_bytes: federated.inter_node_wire_bytes(),
                hop_latency_s: federated.serialized_hop_latency().as_secs(),
                bit_exact,
            });
        }
    }
    rows
}

/// Formats the single-node-vs-cluster sweep as one table.
pub fn format_cluster_sweep(rows: &[ClusterSweepRow]) -> String {
    let mut out =
        String::from("Fig. 9 cluster sweep: single session vs gateway-to-gateway federation\n");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.codec.clone(),
                r.nodes.to_string(),
                r.topology.clone(),
                r.inter_node_wire_bytes.to_string(),
                format!("{:.4}", r.hop_latency_s),
                if r.bit_exact { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    out.push_str(&format_table(
        &[
            "codec",
            "nodes",
            "global tree",
            "inter-node B",
            "hop lat (s)",
            "bit-exact",
        ],
        &table,
    ));
    out
}

/// Formats the Fig. 9 headline table for one workload.
pub fn format(comparison: &WorkloadComparison) -> String {
    let fmt_opt = |v: Option<f64>| {
        v.map(|x| format!("{x:.2}"))
            .unwrap_or_else(|| "-".to_string())
    };
    let rows: Vec<Vec<String>> = comparison
        .summaries
        .iter()
        .map(|s| {
            vec![
                s.model.clone(),
                s.system.clone(),
                fmt_opt(s.time_to_accuracy_h),
                fmt_opt(s.cpu_to_accuracy_h),
                format!("{:.1}", s.final_accuracy),
                format!("{:.2}", s.total_wall_h),
                format!("{:.2}", s.total_cpu_h),
            ]
        })
        .collect();
    let mut out = format!(
        "Fig. 9: time/cost to {:.0}% accuracy (synthetic workload; see DESIGN.md)\n",
        comparison.target_accuracy
    );
    out.push_str(&format_table(
        &[
            "model",
            "system",
            "TTA (h)",
            "CPU-to-acc (h)",
            "final acc (%)",
            "wall (h)",
            "CPU (h)",
        ],
        &rows,
    ));
    out
}

/// Formats the Fig. 10 time-series summary for one workload.
pub fn format_timeseries(comparison: &WorkloadComparison) -> String {
    let mut out = String::from("Fig. 10: per-round time series (last sample per system)\n");
    let rows: Vec<Vec<String>> = comparison
        .outcomes
        .iter()
        .map(|o| {
            let mean_rate = if o.arrival_rate.is_empty() {
                0.0
            } else {
                o.arrival_rate.points.iter().map(|(_, v)| v).sum::<f64>()
                    / o.arrival_rate.len() as f64
            };
            let mean_active = if o.active_aggregators.is_empty() {
                0.0
            } else {
                o.active_aggregators
                    .points
                    .iter()
                    .map(|(_, v)| v)
                    .sum::<f64>()
                    / o.active_aggregators.len() as f64
            };
            let mean_cpu = if o.cpu_per_round.is_empty() {
                0.0
            } else {
                o.cpu_per_round.points.iter().map(|(_, v)| v).sum::<f64>()
                    / o.cpu_per_round.len() as f64
            };
            vec![
                o.system.clone(),
                format!("{mean_rate:.1}"),
                format!("{mean_active:.1}"),
                format!("{mean_cpu:.1}"),
            ]
        })
        .collect();
    out.push_str(&format_table(
        &["system", "arrivals/min", "avg active agg", "CPU s/round"],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifl_beats_sl_and_sf_on_small_run() {
        let comparison = run_workload(ModelKind::ResNet18, 6, 30.0);
        assert_eq!(comparison.summaries.len(), 3);
        let find = |label: &str| {
            comparison
                .summaries
                .iter()
                .find(|s| s.system == label)
                .unwrap()
                .clone()
        };
        let lifl = find("LIFL");
        let sl = find("SL");
        let sf = find("SF");
        // Fig. 9 shape: LIFL's total wall and CPU are lowest; SL the most expensive CPU.
        assert!(lifl.total_wall_h < sl.total_wall_h);
        assert!(lifl.total_cpu_h < sf.total_cpu_h);
        assert!(lifl.total_cpu_h < sl.total_cpu_h);
        let text = format(&comparison);
        assert!(text.contains("LIFL"));
        let ts = format_timeseries(&comparison);
        assert!(ts.contains("arrivals/min"));
    }

    #[test]
    fn cluster_sweep_is_bit_exact_and_prices_federation() {
        let rows = cluster_sweep(96, &[1, 2, 4]);
        assert_eq!(rows.len(), 3 * 4, "node counts x ablation codecs");
        for row in &rows {
            assert!(row.bit_exact, "{}/{} nodes diverged", row.codec, row.nodes);
        }
        // A single-node "cluster" never crosses machines.
        assert!(rows
            .iter()
            .filter(|r| r.nodes == 1)
            .all(|r| r.inter_node_wire_bytes == 0));
        // More machines cross more bytes; stronger codecs cross fewer.
        let bytes = |codec: &str, nodes: usize| {
            rows.iter()
                .find(|r| r.codec == codec && r.nodes == nodes)
                .unwrap()
                .inter_node_wire_bytes
        };
        assert!(bytes("identity", 4) > bytes("identity", 2));
        assert!(bytes("identity", 4) > 3 * bytes("uniform8", 4));
        let text = format_cluster_sweep(&rows);
        assert!(text.contains("bit-exact"));
        assert!(text.contains("uniform8"));
    }

    #[test]
    fn codec_sweep_exposes_codec_x_system_interactions() {
        let sweep = codec_sweep(ModelKind::ResNet18, 4, 30.0);
        assert_eq!(sweep.len(), 4, "one comparison per ablation codec");
        let wall = |codec: CodecKind, system: &str| {
            sweep
                .iter()
                .find(|(c, _)| *c == codec)
                .unwrap()
                .1
                .summaries
                .iter()
                .find(|s| s.system == system)
                .unwrap()
                .total_wall_h
        };
        for system in ["LIFL", "SF", "SL"] {
            // Quantized transfers never slow a system's rounds down.
            assert!(
                wall(CodecKind::Uniform8, system) <= wall(CodecKind::Identity, system) + 1e-9,
                "{system}: uniform8 must not be slower than identity"
            );
            // Every codec's run still learns on every system.
            for (codec, comparison) in &sweep {
                let summary = comparison
                    .summaries
                    .iter()
                    .find(|s| s.system == system)
                    .unwrap();
                assert_eq!(summary.codec, codec.label());
                assert!(
                    summary.final_accuracy > 20.0,
                    "{system}/{codec} never learned: {:.1}%",
                    summary.final_accuracy
                );
            }
        }
        let text = format_codec_sweep(&sweep);
        assert!(text.contains("uniform8"));
        assert!(text.contains("codec"));
    }
}
