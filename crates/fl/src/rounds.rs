//! The algorithm-level synchronous FL driver: produces the accuracy-vs-round
//! curve that, combined with a system simulator's per-round wall-clock and CPU
//! costs, yields the time-to-accuracy and cost-to-accuracy figures (Fig. 9).

use crate::aggregate::CumulativeFedAvg;
use crate::codec::{ErrorFeedback, UpdateCodec};
use crate::dataset::FederatedDataset;
use crate::metrics::accuracy_percent;
use crate::model::DenseModel;
use crate::population::Population;
use crate::trainer::{LocalTrainer, TrainerConfig};
use lifl_simcore::SimRng;
use lifl_types::CodecKind;

/// Configuration of the FL driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlDriverConfig {
    /// Local-training configuration.
    pub trainer: TrainerConfig,
    /// Number of rounds to run.
    pub rounds: usize,
    /// Evaluate accuracy every this many rounds (1 = every round).
    pub eval_every: usize,
    /// Codec every client update travels through before aggregation
    /// (client-side error feedback keeps the long-run signal unbiased).
    pub codec: CodecKind,
}

impl Default for FlDriverConfig {
    fn default() -> Self {
        FlDriverConfig {
            trainer: TrainerConfig::default(),
            rounds: 50,
            eval_every: 1,
            codec: CodecKind::Identity,
        }
    }
}

/// The outcome of one round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// Round index (starting at 1).
    pub round: usize,
    /// Number of client updates aggregated.
    pub updates: usize,
    /// Test accuracy after the round, if evaluated.
    pub accuracy: Option<f64>,
    /// Average local training loss reported by the participating clients.
    pub train_loss: f64,
    /// Per-participant sample counts (drives system-level arrival simulation).
    pub participant_samples: Vec<u64>,
}

/// Runs synchronous FedAvg over a population and dataset.
#[derive(Debug, Clone)]
pub struct FlDriver {
    dataset: FederatedDataset,
    population: Population,
    trainer: LocalTrainer,
    config: FlDriverConfig,
    global: DenseModel,
    feedback: ErrorFeedback,
    history: Vec<RoundOutcome>,
}

impl FlDriver {
    /// Creates a driver with a zero-initialised global model.
    pub fn new(dataset: FederatedDataset, population: Population, config: FlDriverConfig) -> Self {
        let trainer = LocalTrainer::new(dataset.num_features, dataset.num_classes, config.trainer);
        let global = dataset.initial_model();
        let feedback = ErrorFeedback::new(UpdateCodec::new(config.codec));
        FlDriver {
            dataset,
            population,
            trainer,
            config,
            global,
            feedback,
            history: Vec::new(),
        }
    }

    /// The current global model.
    pub fn global_model(&self) -> &DenseModel {
        &self.global
    }

    /// Completed round outcomes.
    pub fn history(&self) -> &[RoundOutcome] {
        &self.history
    }

    /// Current test accuracy of the global model.
    pub fn evaluate(&self) -> f64 {
        accuracy_percent(&self.trainer, &self.global, self.dataset.test_set())
    }

    /// Runs one synchronous round: select, train locally, aggregate with
    /// FedAvg, optionally evaluate. Returns the outcome.
    pub fn run_round(&mut self, rng: &mut SimRng) -> RoundOutcome {
        // Re-sync the error-feedback encoder if the codec was reconfigured
        // after construction (residuals from another codec are meaningless).
        if self.feedback.kind() != self.config.codec {
            self.feedback = ErrorFeedback::new(UpdateCodec::new(self.config.codec));
        }
        let round = self.history.len() + 1;
        let participants = self.population.select_round(rng);
        let mut accumulator = CumulativeFedAvg::new(self.dataset.model_dim());
        let mut folded = 0usize;
        let mut loss_sum = 0.0;
        let mut participant_samples = Vec::with_capacity(participants.len());
        for client in &participants {
            let shard = self.dataset.shard(client.id);
            let (local, loss) = self.trainer.train(&self.global, shard, rng);
            let samples = shard.len().max(1) as u64;
            loss_sum += loss;
            participant_samples.push(samples);
            // The update crosses the data plane in its codec-transparent
            // envelope and folds through the one polymorphic path: dense
            // stays dense under a lossless codec, lossy codecs ship the
            // encoded form (with per-client error feedback) and fold fused —
            // no dense intermediate is ever materialised.
            let update = self.feedback.encode_update(client.id, local, samples);
            if accumulator.fold_update(&update).is_ok() {
                folded += 1;
            }
            self.feedback.recycle_update(update);
        }
        if let Ok(aggregated) = accumulator.finalize() {
            self.global = aggregated.model;
        }
        let accuracy = if round.is_multiple_of(self.config.eval_every.max(1)) {
            Some(self.evaluate())
        } else {
            None
        };
        let outcome = RoundOutcome {
            round,
            updates: folded,
            accuracy,
            train_loss: loss_sum / participants.len().max(1) as f64,
            participant_samples,
        };
        self.history.push(outcome.clone());
        outcome
    }

    /// Runs all configured rounds and returns the history.
    pub fn run_all(&mut self, rng: &mut SimRng) -> Vec<RoundOutcome> {
        for _ in 0..self.config.rounds {
            self.run_round(rng);
        }
        self.history.clone()
    }

    /// The accuracy-versus-round curve (round index, accuracy percent).
    pub fn accuracy_curve(&self) -> Vec<(usize, f64)> {
        self.history
            .iter()
            .filter_map(|r| r.accuracy.map(|a| (r.round, a)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientAvailability;
    use crate::dataset::DatasetConfig;
    use crate::population::PopulationConfig;

    fn small_driver(seed: u64) -> (FlDriver, SimRng) {
        let mut rng = SimRng::from_seed(seed);
        let dataset = FederatedDataset::generate(
            DatasetConfig {
                num_clients: 30,
                num_features: 12,
                num_classes: 6,
                mean_samples_per_client: 40,
                dirichlet_alpha: 0.5,
                test_samples: 300,
                noise_std: 0.4,
            },
            &mut rng,
        );
        let population = Population::generate(
            PopulationConfig {
                total_clients: 30,
                active_per_round: 10,
                availability: ClientAvailability::AlwaysOn,
                mean_samples: 40,
                speed_spread: 0.3,
            },
            &mut rng,
        );
        let driver = FlDriver::new(
            dataset,
            population,
            FlDriverConfig {
                trainer: TrainerConfig {
                    batch_size: 16,
                    learning_rate: 0.05,
                    local_epochs: 2,
                },
                rounds: 15,
                eval_every: 1,
                codec: lifl_types::CodecKind::Identity,
            },
        );
        (driver, rng)
    }

    #[test]
    fn accuracy_improves_over_rounds() {
        let (mut driver, mut rng) = small_driver(42);
        let initial = driver.evaluate();
        driver.run_all(&mut rng);
        let final_acc = driver.evaluate();
        assert!(
            final_acc > initial + 10.0,
            "accuracy should improve noticeably: {initial} -> {final_acc}"
        );
        assert_eq!(driver.history().len(), 15);
        let curve = driver.accuracy_curve();
        assert_eq!(curve.len(), 15);
        assert!(curve.last().unwrap().1 >= curve.first().unwrap().1 - 5.0);
    }

    #[test]
    fn rounds_record_participants() {
        let (mut driver, mut rng) = small_driver(7);
        let outcome = driver.run_round(&mut rng);
        assert_eq!(outcome.round, 1);
        assert_eq!(outcome.updates, 10);
        assert_eq!(outcome.participant_samples.len(), 10);
        assert!(outcome.accuracy.is_some());
    }

    #[test]
    fn quantized_driver_still_learns() {
        let (mut driver, mut rng) = small_driver(42);
        driver.config.codec = lifl_types::CodecKind::Uniform8;
        let initial = driver.evaluate();
        driver.run_all(&mut rng);
        let final_acc = driver.evaluate();
        assert!(
            final_acc > initial + 10.0,
            "uniform8 driver should still learn: {initial} -> {final_acc}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut d1, mut r1) = small_driver(9);
        let (mut d2, mut r2) = small_driver(9);
        d1.run_round(&mut r1);
        d2.run_round(&mut r2);
        assert_eq!(d1.global_model(), d2.global_model());
    }
}
