//! # lifl-bench
//!
//! Criterion benchmark targets, one per table/figure of the paper's
//! evaluation plus micro-benchmarks of the shared-memory store and FedAvg.
//! Run `cargo bench --workspace`; each target prints the rows/series it
//! regenerates before measuring.

#![forbid(unsafe_code)]
