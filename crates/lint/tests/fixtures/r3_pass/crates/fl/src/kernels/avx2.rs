use super::scalar;

pub(super) unsafe fn axpy(acc: &mut [f32], src: &[f32], w: f32) {
    scalar::axpy(acc, src, w);
}
