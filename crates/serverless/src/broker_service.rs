//! The always-on message-broker service of serverless FL baselines (§2.3):
//! stores routes between ephemeral functions and buffers model updates.

use lifl_dataplane::broker::BrokerModel;
use lifl_types::{AggregatorId, SimDuration, SimTime};
use std::collections::HashMap;

/// A buffered message: destination and payload size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrokeredMessage {
    /// Destination aggregator/topic.
    pub destination: AggregatorId,
    /// Payload size in bytes.
    pub bytes: u64,
    /// When the message was published.
    pub published_at: SimTime,
}

/// The message-broker service.
#[derive(Debug, Clone)]
pub struct BrokerService {
    model: BrokerModel,
    queues: HashMap<AggregatorId, Vec<BrokeredMessage>>,
    routes: HashMap<AggregatorId, AggregatorId>,
    peak_buffered_bytes: u64,
    buffered_bytes: u64,
    busy_cpu: SimDuration,
}

impl Default for BrokerService {
    fn default() -> Self {
        Self::new(BrokerModel::default())
    }
}

impl BrokerService {
    /// Creates a broker with the given cost model.
    pub fn new(model: BrokerModel) -> Self {
        BrokerService {
            model,
            queues: HashMap::new(),
            routes: HashMap::new(),
            peak_buffered_bytes: 0,
            buffered_bytes: 0,
            busy_cpu: SimDuration::ZERO,
        }
    }

    /// Registers a route from a source to a destination aggregator (the
    /// stateful role serverless functions cannot play themselves).
    pub fn register_route(&mut self, source: AggregatorId, destination: AggregatorId) {
        self.routes.insert(source, destination);
    }

    /// Looks up the destination for messages produced by `source`.
    pub fn route(&self, source: AggregatorId) -> Option<AggregatorId> {
        self.routes.get(&source).copied()
    }

    /// Publishes a message, buffering it until the consumer fetches it.
    /// Returns the latency the broker hop adds.
    pub fn publish(&mut self, msg: BrokeredMessage) -> SimDuration {
        self.buffered_bytes += msg.bytes;
        self.peak_buffered_bytes = self.peak_buffered_bytes.max(self.buffered_bytes);
        let clock_ghz = 2.8;
        self.busy_cpu += self.model.cpu(msg.bytes).to_duration(clock_ghz);
        self.queues.entry(msg.destination).or_default().push(msg);
        self.model.latency(msg.bytes)
    }

    /// Consumes all messages waiting for `destination`.
    pub fn consume(&mut self, destination: AggregatorId) -> Vec<BrokeredMessage> {
        let msgs = self.queues.remove(&destination).unwrap_or_default();
        let freed: u64 = msgs.iter().map(|m| m.bytes).sum();
        self.buffered_bytes = self.buffered_bytes.saturating_sub(freed);
        msgs
    }

    /// Messages currently waiting for `destination`.
    pub fn pending(&self, destination: AggregatorId) -> usize {
        self.queues.get(&destination).map(Vec::len).unwrap_or(0)
    }

    /// Peak bytes ever buffered (memory footprint of the broker).
    pub fn peak_buffered_bytes(&self) -> u64 {
        self.peak_buffered_bytes
    }

    /// CPU time spent processing messages.
    pub fn busy_cpu(&self) -> SimDuration {
        self.busy_cpu
    }

    /// Idle CPU the broker burns over a wall-clock interval just by existing.
    pub fn idle_cpu(&self, wall: SimDuration) -> SimDuration {
        self.model.idle_cpu_time(wall)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_consume_flow() {
        let mut broker = BrokerService::default();
        let dst = AggregatorId::new(1);
        broker.register_route(AggregatorId::new(9), dst);
        assert_eq!(broker.route(AggregatorId::new(9)), Some(dst));
        assert_eq!(broker.route(AggregatorId::new(8)), None);

        let latency = broker.publish(BrokeredMessage {
            destination: dst,
            bytes: 1024 * 1024,
            published_at: SimTime::ZERO,
        });
        assert!(latency.as_secs() > 0.0);
        assert_eq!(broker.pending(dst), 1);
        assert!(broker.peak_buffered_bytes() >= 1024 * 1024);

        let msgs = broker.consume(dst);
        assert_eq!(msgs.len(), 1);
        assert_eq!(broker.pending(dst), 0);
        assert!(broker.busy_cpu().as_secs() > 0.0);
    }

    #[test]
    fn idle_cost_accrues_without_traffic() {
        let broker = BrokerService::default();
        assert!(broker.idle_cpu(SimDuration::from_secs(60.0)).as_secs() > 0.0);
    }

    #[test]
    fn peak_tracks_concurrent_buffering() {
        let mut broker = BrokerService::default();
        let dst = AggregatorId::new(2);
        for _ in 0..3 {
            broker.publish(BrokeredMessage {
                destination: dst,
                bytes: 100,
                published_at: SimTime::ZERO,
            });
        }
        assert_eq!(broker.peak_buffered_bytes(), 300);
        broker.consume(dst);
        broker.publish(BrokeredMessage {
            destination: dst,
            bytes: 100,
            published_at: SimTime::ZERO,
        });
        assert_eq!(broker.peak_buffered_bytes(), 300);
    }
}
