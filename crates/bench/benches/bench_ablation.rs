//! Ablation sweeps: EWMA α, leaf fan-in and placement policy (DESIGN.md §4).
use criterion::{criterion_group, criterion_main, Criterion};
use lifl_experiments::ablation;

fn bench(c: &mut Criterion) {
    let result = ablation::run();
    println!("{}", ablation::format(&result));
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("alpha_sweep", |b| b.iter(ablation::alpha_sweep));
    group.bench_function("fan_in_sweep", |b| b.iter(ablation::fan_in_sweep));
    group.bench_function("placement_sweep", |b| b.iter(ablation::placement_sweep));
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
