//! Ring buffers (`BPF_MAP_TYPE_RINGBUF`).
//!
//! The LIFL agent drains the metrics map on a period (§4.3); an alternative,
//! lower-latency channel from in-kernel sidecar programs to the user-space
//! agent is the BPF ring buffer: the program reserves a record, fills it and
//! submits it, and the consumer drains records in FIFO order. When the buffer
//! is full, new records are dropped and counted — the property that makes the
//! producer side wait-free. This module reproduces those semantics (bounded
//! byte capacity, reserve/submit/discard, FIFO drain, drop accounting).

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// One record published through the ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingRecord<T> {
    /// Monotonic sequence number assigned at submit time.
    pub sequence: u64,
    /// Size the record is charged against the buffer capacity, in bytes.
    pub size_bytes: usize,
    /// The payload.
    pub value: T,
}

#[derive(Debug)]
struct RingInner<T> {
    records: VecDeque<RingRecord<T>>,
    used_bytes: usize,
    capacity_bytes: usize,
    next_sequence: u64,
    dropped: u64,
}

/// An emulated BPF ring buffer with a bounded byte capacity.
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    inner: Arc<Mutex<RingInner<T>>>,
}

impl<T> RingBuffer<T> {
    /// Creates a ring buffer with the given byte capacity (minimum 1).
    pub fn new(capacity_bytes: usize) -> Self {
        RingBuffer {
            inner: Arc::new(Mutex::new(RingInner {
                records: VecDeque::new(),
                used_bytes: 0,
                capacity_bytes: capacity_bytes.max(1),
                next_sequence: 0,
                dropped: 0,
            })),
        }
    }

    /// Byte capacity of the buffer.
    pub fn capacity_bytes(&self) -> usize {
        self.inner.lock().capacity_bytes
    }

    /// Bytes currently occupied by unconsumed records.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used_bytes
    }

    /// Number of unconsumed records.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// Whether no records are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of records dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Publishes a record of `size_bytes`. Returns the record's sequence
    /// number, or `None` if the buffer did not have room (the record is
    /// dropped and counted, never blocking the producer).
    pub fn submit(&self, value: T, size_bytes: usize) -> Option<u64> {
        let mut inner = self.inner.lock();
        let size = size_bytes.max(1);
        if inner.used_bytes + size > inner.capacity_bytes {
            inner.dropped += 1;
            return None;
        }
        let sequence = inner.next_sequence;
        inner.next_sequence += 1;
        inner.used_bytes += size;
        inner.records.push_back(RingRecord {
            sequence,
            size_bytes: size,
            value,
        });
        Some(sequence)
    }

    /// Consumes the oldest record, if any.
    pub fn consume(&self) -> Option<RingRecord<T>> {
        let mut inner = self.inner.lock();
        let record = inner.records.pop_front()?;
        inner.used_bytes -= record.size_bytes;
        Some(record)
    }

    /// Drains every waiting record in FIFO order.
    pub fn drain(&self) -> Vec<RingRecord<T>> {
        let mut inner = self.inner.lock();
        inner.used_bytes = 0;
        inner.records.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_and_consume_fifo() {
        let ring: RingBuffer<&'static str> = RingBuffer::new(1024);
        assert_eq!(ring.submit("a", 16), Some(0));
        assert_eq!(ring.submit("b", 16), Some(1));
        assert_eq!(ring.len(), 2);
        let first = ring.consume().unwrap();
        assert_eq!(first.value, "a");
        assert_eq!(first.sequence, 0);
        let second = ring.consume().unwrap();
        assert_eq!(second.value, "b");
        assert!(ring.consume().is_none());
        assert!(ring.is_empty());
    }

    #[test]
    fn full_buffer_drops_instead_of_blocking() {
        let ring: RingBuffer<u32> = RingBuffer::new(64);
        assert!(ring.submit(1, 32).is_some());
        assert!(ring.submit(2, 32).is_some());
        assert!(
            ring.submit(3, 32).is_none(),
            "third record exceeds capacity"
        );
        assert_eq!(ring.dropped(), 1);
        assert_eq!(ring.used_bytes(), 64);
        // Consuming makes room again.
        ring.consume();
        assert!(ring.submit(4, 32).is_some());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn drain_returns_everything_in_order_and_resets_usage() {
        let ring: RingBuffer<u32> = RingBuffer::new(1024);
        for i in 0..5 {
            ring.submit(i, 8);
        }
        let drained = ring.drain();
        assert_eq!(drained.len(), 5);
        let values: Vec<u32> = drained.iter().map(|r| r.value).collect();
        assert_eq!(values, vec![0, 1, 2, 3, 4]);
        assert_eq!(ring.used_bytes(), 0);
        assert!(ring.is_empty());
    }

    #[test]
    fn sequence_numbers_are_monotonic_across_drops() {
        let ring: RingBuffer<u8> = RingBuffer::new(8);
        assert_eq!(ring.submit(1, 8), Some(0));
        assert_eq!(ring.submit(2, 8), None);
        ring.consume();
        assert_eq!(
            ring.submit(3, 8),
            Some(1),
            "dropped records do not consume sequence numbers"
        );
    }

    #[test]
    fn zero_sized_records_are_charged_at_least_one_byte() {
        let ring: RingBuffer<u8> = RingBuffer::new(2);
        assert!(ring.submit(1, 0).is_some());
        assert!(ring.submit(2, 0).is_some());
        assert!(ring.submit(3, 0).is_none());
        assert_eq!(ring.capacity_bytes(), 2);
    }

    #[test]
    fn clones_share_the_buffer() {
        let ring: RingBuffer<u8> = RingBuffer::new(16);
        let producer = ring.clone();
        producer.submit(9, 4);
        assert_eq!(ring.consume().unwrap().value, 9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn usage_accounting_is_exact_and_bounded(
            capacity in 16usize..256,
            submissions in proptest::collection::vec(1usize..64, 1..100),
        ) {
            let ring: RingBuffer<usize> = RingBuffer::new(capacity);
            let mut expected_used = 0usize;
            let mut accepted = 0u64;
            for (i, size) in submissions.iter().enumerate() {
                match ring.submit(i, *size) {
                    Some(_) => {
                        expected_used += *size;
                        accepted += 1;
                    }
                    None => {
                        prop_assert!(expected_used + *size > capacity,
                            "drop only when the record does not fit");
                    }
                }
                prop_assert_eq!(ring.used_bytes(), expected_used);
                prop_assert!(ring.used_bytes() <= capacity);
            }
            // Draining returns exactly the accepted records, in order.
            let drained = ring.drain();
            prop_assert_eq!(drained.len() as u64, accepted);
            for pair in drained.windows(2) {
                prop_assert!(pair[0].sequence < pair[1].sequence);
            }
            prop_assert_eq!(ring.used_bytes(), 0);
        }
    }
}
