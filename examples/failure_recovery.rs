//! Stateless aggregator failure and recovery from checkpoints (§3, Appendix B):
//! commit a few global versions, checkpoint periodically, kill the aggregator
//! mid-round and show exactly what is recovered and what must be redone —
//! first on a standalone `RecoveryManager`, then end to end on a
//! fault-tolerant multi-node `Cluster` that survives a node kill mid-round
//! with a bit-exact aggregate.
//!
//! Run with: `cargo run -p lifl-examples --example failure_recovery`

use lifl_core::cluster::{ClusterBuilder, FaultToleranceConfig};
use lifl_core::recovery::RecoveryManager;
use lifl_core::session::Update;
use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::DenseModel;
use lifl_types::{ClientId, NodeId, SimDuration, SimTime, Topology};

fn main() {
    // Checkpoint every 2 committed versions; a replacement runtime takes 0.8 s
    // to start (LIFL's lightweight runtime rather than a full container).
    let mut manager =
        RecoveryManager::new(2, SimDuration::from_secs(0.8)).expect("valid configuration");

    for version in 1..=5u64 {
        let model = DenseModel::from_vec(vec![version as f32; 8]);
        let wrote = manager.commit_version(&model, SimTime::from_secs(version as f64 * 30.0));
        println!(
            "committed version {version}{}",
            if wrote {
                "  -> checkpointed to external storage"
            } else {
                ""
            }
        );
    }

    // A new round is in progress: three updates folded, then the aggregator dies.
    manager.record_fold();
    manager.record_fold();
    manager.record_fold();
    println!(
        "\naggregator crashes with {} in-progress updates...",
        manager.in_progress_updates()
    );
    let outcome = manager
        .fail_and_recover(SimTime::from_secs(170.0))
        .expect("recovery");

    println!(
        "recovered from checkpointed version {:?} (model[0] = {:?})",
        outcome.recovered_round.map(|r| r.index()),
        outcome.recovered_model.as_ref().map(|m| m.as_slice()[0])
    );
    println!(
        "lost {} committed-but-uncheckpointed version(s) and {} in-progress update(s)",
        outcome.lost_versions, outcome.lost_in_progress_updates
    );
    println!(
        "replacement runtime ready {:.1}s after the failure (at t = {:.1}s)",
        outcome.restart_delay.as_secs(),
        outcome.ready_at.as_secs()
    );
    println!(
        "checkpoint store holds {} checkpoint(s), {} bytes written in total",
        manager.store().len(),
        manager.store().bytes_written()
    );

    // The same machinery wired into a real federated round: two nodes each
    // drive a [2, 2] subtree, node 1 is killed with the round in flight, its
    // clients re-send, and the re-driven round matches an undisturbed
    // cluster bit for bit.
    println!("\n--- surviving a node kill inside a federated cluster round ---");
    let topology = Topology::new(vec![2, 2, 2]).expect("topology");
    let batch: Vec<ModelUpdate> = (0..topology.total_updates())
        .map(|i| {
            let values: Vec<f32> = (0..16).map(|d| ((i * 16 + d) % 23) as f32 * 0.1).collect();
            ModelUpdate::from_client(
                ClientId::new(i as u64),
                DenseModel::from_vec(values),
                (i + 1) as u64,
            )
        })
        .collect();

    let mut undisturbed = ClusterBuilder::new()
        .topology(topology.clone())
        .build()
        .expect("cluster");
    undisturbed
        .ingest_all(batch.iter().cloned().map(Update::Dense))
        .expect("ingest");
    let reference = undisturbed.drive().expect("round").update;

    let mut cluster = ClusterBuilder::new()
        .topology(topology)
        .fault_tolerance(FaultToleranceConfig::default())
        .build()
        .expect("cluster");
    cluster
        .ingest_all(batch.iter().cloned().map(Update::Dense))
        .expect("ingest");
    // Node 1 dies after node 0's intermediate already reached the top.
    cluster
        .schedule_node_failure(NodeId::new(1), 1)
        .expect("fault injection");
    let failure = cluster.drive().expect_err("the kill fails the drive");
    println!("round failed mid-drive: {failure}");
    let lost = cluster.take_lost_clients();
    println!("{} client(s) must re-send their updates", lost.len());
    for client in lost {
        let update = batch
            .iter()
            .find(|u| u.client == Some(client))
            .expect("lost client came from the batch");
        cluster
            .ingest(Update::Dense(update.clone()))
            .expect("re-send");
    }
    let survived = cluster.drive().expect("the retried round completes").update;
    let stats = cluster.fault_stats().expect("fault tolerance is on");
    println!(
        "retried round aggregated {} samples ({} survivor hop(s) deduped, {} node restart(s))",
        survived.samples, stats.deduped_hops, stats.node_restarts
    );
    let bit_exact = survived
        .model
        .as_slice()
        .iter()
        .zip(reference.model.as_slice())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    println!("survived round bit-exact with the undisturbed cluster: {bit_exact}");
    assert!(bit_exact, "survived round must match bit for bit");
}
