//! Statistics collectors: time series, Gantt timelines, histograms and summaries.

use lifl_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A named series of `(time, value)` samples, used for Fig. 9 and Fig. 10.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TimeSeries {
    /// Series label (for example "LIFL" or "arrival rate").
    pub name: String,
    /// Samples in insertion order.
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, time: SimTime, value: f64) {
        self.points.push((time.as_secs(), value));
    }

    /// Appends a raw `(x, y)` sample (for series whose x-axis is not time).
    pub fn push_xy(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|(_, v)| *v)
    }

    /// The first x at which the series reaches at least `threshold`, if ever.
    /// Used for "time to accuracy": the x-axis may be hours or CPU-hours.
    pub fn first_crossing(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(_, v)| *v >= threshold)
            .map(|(x, _)| *x)
    }
}

/// One task interval on a Gantt chart (Fig. 4 / Fig. 7(c) timelines).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GanttSegment {
    /// Row label, for example "LF1" or "Top".
    pub row: String,
    /// Task category, for example "Network", "Agg." or "Eval.".
    pub task: String,
    /// Interval start.
    pub start: f64,
    /// Interval end.
    pub end: f64,
}

/// A collection of Gantt segments with helpers to summarise rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Gantt {
    /// All segments in insertion order.
    pub segments: Vec<GanttSegment>,
}

impl Gantt {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a segment.
    pub fn add(
        &mut self,
        row: impl Into<String>,
        task: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        self.segments.push(GanttSegment {
            row: row.into(),
            task: task.into(),
            start: start.as_secs(),
            end: end.as_secs().max(start.as_secs()),
        });
    }

    /// The latest end time across all segments (the makespan).
    pub fn makespan(&self) -> f64 {
        self.segments.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Total busy time of one row.
    pub fn row_busy(&self, row: &str) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.row == row)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Distinct row labels in insertion order.
    pub fn rows(&self) -> Vec<String> {
        let mut rows = Vec::new();
        for s in &self.segments {
            if !rows.contains(&s.row) {
                rows.push(s.row.clone());
            }
        }
        rows
    }

    /// Renders a coarse ASCII timeline, one line per row.
    pub fn render_ascii(&self, width: usize) -> String {
        let makespan = self.makespan().max(1e-9);
        let width = width.max(10);
        let mut out = String::new();
        for row in self.rows() {
            let mut line = vec![' '; width];
            for seg in self.segments.iter().filter(|s| s.row == row) {
                let a = ((seg.start / makespan) * width as f64).floor() as usize;
                let b = ((seg.end / makespan) * width as f64).ceil() as usize;
                let ch = seg.task.chars().next().unwrap_or('#');
                for cell in line.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    *cell = ch;
                }
            }
            out.push_str(&format!("{row:>6} |{}|\n", line.iter().collect::<String>()));
        }
        out.push_str(&format!("  span: {:.1}s\n", makespan));
        out
    }
}

/// A fixed-width histogram over `[low, high)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    low: f64,
    high: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[low, high)`.
    ///
    /// # Panics
    /// Panics if `bins` is zero or `high <= low`.
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(high > low, "histogram range must be non-empty");
        Histogram {
            low,
            high,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Records a value; values outside the range are clamped to the edge bins.
    pub fn record(&mut self, value: f64) {
        let bins = self.counts.len();
        let frac = (value - self.low) / (self.high - self.low);
        let idx = ((frac * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Computes summary statistics of `values`. Returns the default for an empty slice.
    pub fn of(values: &[f64]) -> Summary {
        if values.is_empty() {
            return Summary::default();
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let pct = |p: f64| -> f64 {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        };
        Summary {
            count: values.len(),
            mean: values.iter().sum::<f64>() / values.len() as f64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: pct(0.5),
            p95: pct(0.95),
        }
    }

    /// Computes summary statistics over durations.
    pub fn of_durations(values: &[SimDuration]) -> Summary {
        let secs: Vec<f64> = values.iter().map(|d| d.as_secs()).collect();
        Summary::of(&secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_series_crossing() {
        let mut ts = TimeSeries::new("acc");
        ts.push(SimTime::from_secs(0.0), 10.0);
        ts.push(SimTime::from_secs(100.0), 50.0);
        ts.push(SimTime::from_secs(200.0), 75.0);
        assert_eq!(ts.first_crossing(70.0), Some(200.0));
        assert_eq!(ts.first_crossing(90.0), None);
        assert_eq!(ts.last_value(), Some(75.0));
        assert_eq!(ts.len(), 3);
    }

    #[test]
    fn gantt_makespan_and_busy() {
        let mut g = Gantt::new();
        g.add(
            "LF1",
            "Network",
            SimTime::from_secs(0.0),
            SimTime::from_secs(5.0),
        );
        g.add(
            "LF1",
            "Agg.",
            SimTime::from_secs(5.0),
            SimTime::from_secs(8.0),
        );
        g.add(
            "Top",
            "Agg.",
            SimTime::from_secs(8.0),
            SimTime::from_secs(12.0),
        );
        assert_eq!(g.makespan(), 12.0);
        assert_eq!(g.row_busy("LF1"), 8.0);
        assert_eq!(g.rows(), vec!["LF1".to_string(), "Top".to_string()]);
        let art = g.render_ascii(40);
        assert!(art.contains("LF1"));
        assert!(art.contains("Top"));
    }

    #[test]
    fn histogram_clamps_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-5.0);
        h.record(5.0);
        h.record(50.0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.counts()[9], 1);
    }

    #[test]
    fn summary_percentiles() {
        let values: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let s = Summary::of(&values);
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 50.0).abs() <= 1.0);
        assert!((s.p95 - 95.0).abs() <= 1.0);
        assert_eq!(Summary::of(&[]).count, 0);
    }

    #[test]
    fn gantt_segment_end_never_before_start() {
        let mut g = Gantt::new();
        g.add("A", "x", SimTime::from_secs(5.0), SimTime::from_secs(3.0));
        assert_eq!(g.segments[0].end, 5.0);
    }
}
