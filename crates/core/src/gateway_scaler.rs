//! Vertical scaling of the per-node gateway (§4.2).
//!
//! The gateway performs the one-time payload processing (protocol handling,
//! deserialisation, the tensor→array conversion of Appendix C) for every model
//! update arriving at the node. With a fixed core assignment it would become
//! the data-plane bottleneck at high arrival rates, so LIFL "applies vertical
//! scaling of the gateway by dynamically adjusting the number of assigned CPU
//! cores based on the load level". This module implements that controller:
//! given the observed arrival rate and the per-core processing capacity for
//! the current model size, it picks a core count with head-room and
//! hysteresis so that the gateway never saturates but also does not flap.

use lifl_types::{LiflError, ModelKind, Result, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of the gateway's vertical scaler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatewayScalerConfig {
    /// Cores the gateway always keeps.
    pub min_cores: u32,
    /// Cores the gateway may grow to (bounded by the node's core count).
    pub max_cores: u32,
    /// Target utilisation of the assigned cores (head-room below 1.0).
    pub target_utilisation: f64,
    /// Utilisation below which the gateway releases cores.
    pub scale_down_threshold: f64,
    /// Payload bytes one core can process per second (calibrated to the
    /// gateway's single-pass processing of a ResNet-152 update in well under a
    /// second, §4.2 / Appendix C).
    pub bytes_per_core_per_sec: f64,
}

impl Default for GatewayScalerConfig {
    fn default() -> Self {
        GatewayScalerConfig {
            min_cores: 1,
            max_cores: 8,
            target_utilisation: 0.7,
            scale_down_threshold: 0.3,
            bytes_per_core_per_sec: 400.0 * 1024.0 * 1024.0,
        }
    }
}

impl GatewayScalerConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] when the bounds or thresholds are inconsistent.
    pub fn validate(&self) -> Result<()> {
        if self.min_cores == 0 || self.max_cores < self.min_cores {
            return Err(LiflError::InvalidConfig(format!(
                "core bounds invalid: min {} max {}",
                self.min_cores, self.max_cores
            )));
        }
        if !(0.0..=1.0).contains(&self.target_utilisation)
            || !(0.0..=1.0).contains(&self.scale_down_threshold)
            || self.scale_down_threshold >= self.target_utilisation
        {
            return Err(LiflError::InvalidConfig(format!(
                "utilisation thresholds invalid: target {} scale-down {}",
                self.target_utilisation, self.scale_down_threshold
            )));
        }
        if self.bytes_per_core_per_sec <= 0.0 {
            return Err(LiflError::InvalidConfig(
                "per-core processing rate must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// One scaling decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatewayScaleDecision {
    /// Cores assigned after the decision.
    pub cores: u32,
    /// Utilisation of the assigned cores at the observed load.
    pub utilisation: f64,
    /// Whether the assignment changed.
    pub changed: bool,
    /// Whether the load exceeds even the maximum core assignment
    /// (the gateway would bottleneck the data plane).
    pub saturated: bool,
}

/// The vertical scaler for one node's gateway.
#[derive(Debug, Clone)]
pub struct GatewayScaler {
    config: GatewayScalerConfig,
    cores: u32,
    scale_ups: u64,
    scale_downs: u64,
    last_decision_at: Option<SimTime>,
}

impl GatewayScaler {
    /// Creates a scaler starting at the minimum core assignment.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] when the configuration is invalid.
    pub fn new(config: GatewayScalerConfig) -> Result<Self> {
        config.validate()?;
        Ok(GatewayScaler {
            cores: config.min_cores,
            config,
            scale_ups: 0,
            scale_downs: 0,
            last_decision_at: None,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &GatewayScalerConfig {
        &self.config
    }

    /// Cores currently assigned to the gateway.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Number of scale-up decisions taken.
    pub fn scale_ups(&self) -> u64 {
        self.scale_ups
    }

    /// Number of scale-down decisions taken.
    pub fn scale_downs(&self) -> u64 {
        self.scale_downs
    }

    /// The offered load in bytes per second for `arrival_rate_per_min` updates
    /// of `model` arriving each minute.
    pub fn offered_bytes_per_sec(model: ModelKind, arrival_rate_per_min: f64) -> f64 {
        model.update_bytes() as f64 * arrival_rate_per_min.max(0.0) / 60.0
    }

    /// Evaluates the controller at `now` for the observed arrival rate
    /// (updates per minute) of `model`-sized updates, adjusting the core
    /// assignment if needed.
    pub fn evaluate(
        &mut self,
        now: SimTime,
        model: ModelKind,
        arrival_rate_per_min: f64,
    ) -> GatewayScaleDecision {
        let offered = Self::offered_bytes_per_sec(model, arrival_rate_per_min);
        let per_core = self.config.bytes_per_core_per_sec;
        // Cores needed to keep utilisation at the target.
        let needed = (offered / (per_core * self.config.target_utilisation)).ceil() as u32;
        let needed = needed.clamp(self.config.min_cores, self.config.max_cores);

        let current_util = offered / (per_core * self.cores as f64);
        let previous = self.cores;
        if needed > self.cores {
            self.cores = needed;
            self.scale_ups += 1;
        } else if needed < self.cores && current_util < self.config.scale_down_threshold {
            self.cores = needed;
            self.scale_downs += 1;
        }
        self.last_decision_at = Some(now);

        let utilisation = offered / (per_core * self.cores as f64);
        let saturated = offered > per_core * self.config.max_cores as f64;
        GatewayScaleDecision {
            cores: self.cores,
            utilisation,
            changed: self.cores != previous,
            saturated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler() -> GatewayScaler {
        GatewayScaler::new(GatewayScalerConfig::default()).unwrap()
    }

    #[test]
    fn light_load_stays_at_minimum_cores() {
        let mut scaler = scaler();
        let decision = scaler.evaluate(SimTime::ZERO, ModelKind::ResNet18, 10.0);
        assert_eq!(decision.cores, 1);
        assert!(!decision.changed);
        assert!(!decision.saturated);
        assert!(decision.utilisation < 0.1);
    }

    #[test]
    fn heavy_load_scales_up_and_keeps_headroom() {
        let mut scaler = scaler();
        // 120 ResNet-152 updates per minute ≈ 464 MB/s of payload processing.
        let decision = scaler.evaluate(SimTime::ZERO, ModelKind::ResNet152, 120.0);
        assert!(decision.cores > 1, "should add cores: {}", decision.cores);
        assert!(decision.changed);
        assert!(
            decision.utilisation <= GatewayScalerConfig::default().target_utilisation + 1e-9,
            "utilisation {} must respect the target head-room",
            decision.utilisation
        );
        assert_eq!(scaler.scale_ups(), 1);
    }

    #[test]
    fn scale_down_requires_low_utilisation_hysteresis() {
        let mut scaler = scaler();
        scaler.evaluate(SimTime::ZERO, ModelKind::ResNet152, 120.0);
        let high = scaler.cores();
        // Load drops moderately: utilisation of the current assignment stays
        // above the scale-down threshold, so the assignment is kept.
        let moderate = scaler.evaluate(SimTime::from_secs(60.0), ModelKind::ResNet152, 65.0);
        assert_eq!(
            moderate.cores, high,
            "hysteresis should hold the assignment"
        );
        // Load collapses: now the gateway releases cores.
        let low = scaler.evaluate(SimTime::from_secs(120.0), ModelKind::ResNet152, 5.0);
        assert!(low.cores < high);
        assert_eq!(scaler.scale_downs(), 1);
    }

    #[test]
    fn saturation_is_reported_when_max_cores_is_not_enough() {
        let mut scaler = GatewayScaler::new(GatewayScalerConfig {
            max_cores: 2,
            ..GatewayScalerConfig::default()
        })
        .unwrap();
        let decision = scaler.evaluate(SimTime::ZERO, ModelKind::ResNet152, 600.0);
        assert_eq!(decision.cores, 2);
        assert!(decision.saturated);
        assert!(decision.utilisation > 1.0);
    }

    #[test]
    fn offered_load_scales_with_model_size_and_rate() {
        let small = GatewayScaler::offered_bytes_per_sec(ModelKind::ResNet18, 60.0);
        let large = GatewayScaler::offered_bytes_per_sec(ModelKind::ResNet152, 60.0);
        assert!(large > 4.0 * small);
        assert_eq!(
            GatewayScaler::offered_bytes_per_sec(ModelKind::ResNet18, 0.0),
            0.0
        );
        assert_eq!(
            GatewayScaler::offered_bytes_per_sec(ModelKind::ResNet18, -5.0),
            0.0
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for bad in [
            GatewayScalerConfig {
                min_cores: 0,
                ..GatewayScalerConfig::default()
            },
            GatewayScalerConfig {
                max_cores: 0,
                ..GatewayScalerConfig::default()
            },
            GatewayScalerConfig {
                scale_down_threshold: 0.9,
                target_utilisation: 0.7,
                ..GatewayScalerConfig::default()
            },
            GatewayScalerConfig {
                bytes_per_core_per_sec: 0.0,
                ..GatewayScalerConfig::default()
            },
        ] {
            assert!(
                GatewayScaler::new(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }
}
