//! A Knative-Pod-Autoscaler (KPA) style autoscaler with stable and panic
//! windows.
//!
//! The baseline serverless systems in the paper (§2.3, §6.1) rely on Knative's
//! concurrency-based autoscaling, which the simple
//! [`ThresholdAutoscaler`](crate::autoscale::ThresholdAutoscaler) captures only
//! coarsely. This module models the actual KPA control loop closely enough to
//! study its interaction with FL's bursty arrivals (Fig. 10(a)):
//!
//! * concurrency observations are averaged over a long **stable window**
//!   (default 60 s) and a short **panic window** (default 6 s);
//! * the desired replica count is `ceil(avg_concurrency / target)`;
//! * if the panic-window desired count exceeds twice the current ready count,
//!   the autoscaler enters **panic mode**: it scales by the panic estimate and
//!   refuses to scale down until the panic hold expires;
//! * scale-to-zero happens only after an idle grace period.
//!
//! This "application-agnostic, simple autoscaling" is precisely what LIFL's
//! hierarchy-aware planner (§5.2) replaces, so having a faithful model of it
//! lets the experiments quantify the difference.

use lifl_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of the KPA-style autoscaler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KpaConfig {
    /// Target concurrency per replica.
    pub target_concurrency: f64,
    /// Length of the stable averaging window.
    pub stable_window: SimDuration,
    /// Length of the panic averaging window.
    pub panic_window: SimDuration,
    /// Panic threshold: panic mode starts when the panic-window desired count
    /// exceeds this multiple of the current ready replicas.
    pub panic_threshold: f64,
    /// How long panic mode persists after the last panic trigger.
    pub panic_hold: SimDuration,
    /// Idle time before scaling to zero.
    pub scale_to_zero_grace: SimDuration,
    /// Upper bound on replicas.
    pub max_replicas: u32,
}

impl Default for KpaConfig {
    fn default() -> Self {
        KpaConfig {
            target_concurrency: 2.0,
            stable_window: SimDuration::from_secs(60.0),
            panic_window: SimDuration::from_secs(6.0),
            panic_threshold: 2.0,
            panic_hold: SimDuration::from_secs(60.0),
            scale_to_zero_grace: SimDuration::from_secs(30.0),
            max_replicas: 1000,
        }
    }
}

/// One autoscaling decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KpaDecision {
    /// Desired replica count after this evaluation.
    pub desired_replicas: u32,
    /// Whether the autoscaler is currently in panic mode.
    pub panicking: bool,
    /// The stable-window average concurrency used.
    pub stable_concurrency: f64,
    /// The panic-window average concurrency used.
    pub panic_concurrency: f64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Observation {
    at: SimTime,
    concurrency: f64,
}

/// The KPA-style autoscaler.
#[derive(Debug, Clone)]
pub struct KpaAutoscaler {
    config: KpaConfig,
    observations: VecDeque<Observation>,
    panic_until: Option<SimTime>,
    panic_floor: u32,
    last_positive_at: Option<SimTime>,
}

impl KpaAutoscaler {
    /// Creates an autoscaler with the given configuration.
    pub fn new(config: KpaConfig) -> Self {
        KpaAutoscaler {
            config,
            observations: VecDeque::new(),
            panic_until: None,
            panic_floor: 0,
            last_positive_at: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &KpaConfig {
        &self.config
    }

    /// Records a concurrency observation (in-flight requests) at `now`.
    pub fn observe(&mut self, now: SimTime, concurrency: f64) {
        self.observations.push_back(Observation {
            at: now,
            concurrency: concurrency.max(0.0),
        });
        if concurrency > 0.0 {
            self.last_positive_at = Some(now);
        }
        // Drop observations older than the stable window.
        while let Some(front) = self.observations.front() {
            if now.duration_since(front.at) > self.config.stable_window {
                self.observations.pop_front();
            } else {
                break;
            }
        }
    }

    fn window_average(&self, now: SimTime, window: SimDuration) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for obs in self.observations.iter().rev() {
            if now.duration_since(obs.at) > window {
                break;
            }
            sum += obs.concurrency;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Whether the autoscaler is in panic mode at `now`.
    pub fn panicking(&self, now: SimTime) -> bool {
        self.panic_until
            .is_some_and(|until| now.as_secs() <= until.as_secs())
    }

    /// Evaluates the control loop at `now`, given the currently ready replica
    /// count, and returns the desired replica count.
    pub fn evaluate(&mut self, now: SimTime, ready_replicas: u32) -> KpaDecision {
        let stable = self.window_average(now, self.config.stable_window);
        let panic = self.window_average(now, self.config.panic_window);
        let target = self.config.target_concurrency.max(1e-9);
        let stable_desired = (stable / target).ceil() as u32;
        let panic_desired = (panic / target).ceil() as u32;

        // Enter (or extend) panic mode when the short-window estimate has
        // outrun the current capacity by the panic threshold.
        if ready_replicas > 0
            && panic_desired as f64 >= self.config.panic_threshold * ready_replicas as f64
            && panic_desired > 0
        {
            self.panic_until = Some(now + self.config.panic_hold);
            self.panic_floor = self.panic_floor.max(ready_replicas);
        } else if ready_replicas == 0 && panic_desired > 0 {
            // Scale from zero is immediate but is not a panic.
            self.panic_until = None;
            self.panic_floor = 0;
        }

        let panicking = self.panicking(now);
        if !panicking {
            self.panic_floor = 0;
        }

        let mut desired = if panicking {
            // In panic mode, use the short-window estimate and never let the
            // desired count decrease for as long as the panic persists.
            let held = panic_desired.max(self.panic_floor);
            self.panic_floor = held;
            held
        } else {
            stable_desired
        };

        // Scale to zero only after the grace period with no traffic.
        if desired == 0 {
            let idle_long_enough = match self.last_positive_at {
                Some(at) => now.duration_since(at) >= self.config.scale_to_zero_grace,
                None => true,
            };
            if !idle_long_enough {
                // Hold one replica until the grace period elapses.
                desired = 1;
            }
        }

        let desired = desired.min(self.config.max_replicas);
        KpaDecision {
            desired_replicas: desired,
            panicking,
            stable_concurrency: stable,
            panic_concurrency: panic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler() -> KpaAutoscaler {
        KpaAutoscaler::new(KpaConfig::default())
    }

    #[test]
    fn steady_load_gives_proportional_replicas() {
        let mut kpa = scaler();
        for s in 0..60 {
            kpa.observe(SimTime::from_secs(s as f64), 8.0);
        }
        let decision = kpa.evaluate(SimTime::from_secs(60.0), 4);
        assert_eq!(decision.desired_replicas, 4, "8 concurrency / target 2 = 4");
        assert!((decision.stable_concurrency - 8.0).abs() < 1e-9);
    }

    #[test]
    fn burst_triggers_panic_mode_and_holds_floor() {
        let mut kpa = scaler();
        // Quiet baseline with one replica.
        for s in 0..54 {
            kpa.observe(SimTime::from_secs(s as f64), 1.0);
        }
        // Sudden burst in the last 6 seconds (the panic window).
        for s in 54..60 {
            kpa.observe(SimTime::from_secs(s as f64), 20.0);
        }
        let decision = kpa.evaluate(SimTime::from_secs(60.0), 1);
        assert!(decision.panicking, "burst should trigger panic mode");
        assert!(
            decision.desired_replicas >= 10,
            "panic desired should follow the short window: {}",
            decision.desired_replicas
        );
        // While panic persists, the desired count never drops below the floor
        // even if load momentarily vanishes.
        kpa.observe(SimTime::from_secs(61.0), 0.0);
        let later = kpa.evaluate(SimTime::from_secs(62.0), 10);
        assert!(later.panicking);
        assert!(later.desired_replicas >= 10);
    }

    #[test]
    fn panic_mode_expires_after_hold() {
        let mut kpa = KpaAutoscaler::new(KpaConfig {
            panic_hold: SimDuration::from_secs(10.0),
            ..KpaConfig::default()
        });
        for s in 0..6 {
            kpa.observe(SimTime::from_secs(s as f64), 20.0);
        }
        let burst = kpa.evaluate(SimTime::from_secs(6.0), 1);
        assert!(burst.panicking);
        // Well past the hold with no further bursts, panic clears.
        for s in 7..80 {
            kpa.observe(SimTime::from_secs(s as f64), 1.0);
        }
        let calm = kpa.evaluate(SimTime::from_secs(80.0), 10);
        assert!(!calm.panicking);
        assert!(calm.desired_replicas <= 2);
    }

    #[test]
    fn scale_to_zero_requires_grace_period() {
        let mut kpa = KpaAutoscaler::new(KpaConfig {
            scale_to_zero_grace: SimDuration::from_secs(30.0),
            ..KpaConfig::default()
        });
        kpa.observe(SimTime::from_secs(0.0), 4.0);
        for s in 1..20 {
            kpa.observe(SimTime::from_secs(s as f64), 0.0);
        }
        // Only 20 s idle: hold one replica.
        let early = kpa.evaluate(SimTime::from_secs(20.0), 2);
        assert!(early.desired_replicas >= 1);
        for s in 20..120 {
            kpa.observe(SimTime::from_secs(s as f64), 0.0);
        }
        let late = kpa.evaluate(SimTime::from_secs(120.0), 1);
        assert_eq!(
            late.desired_replicas, 0,
            "idle past grace should scale to zero"
        );
    }

    #[test]
    fn desired_is_capped_by_max_replicas() {
        let mut kpa = KpaAutoscaler::new(KpaConfig {
            max_replicas: 5,
            ..KpaConfig::default()
        });
        for s in 0..60 {
            kpa.observe(SimTime::from_secs(s as f64), 1000.0);
        }
        let decision = kpa.evaluate(SimTime::from_secs(60.0), 5);
        assert_eq!(decision.desired_replicas, 5);
    }

    #[test]
    fn no_observations_means_no_replicas() {
        let mut kpa = scaler();
        let decision = kpa.evaluate(SimTime::from_secs(10.0), 0);
        assert_eq!(decision.desired_replicas, 0);
        assert!(!decision.panicking);
        assert_eq!(decision.stable_concurrency, 0.0);
    }

    #[test]
    fn old_observations_fall_out_of_the_stable_window() {
        let mut kpa = scaler();
        kpa.observe(SimTime::from_secs(0.0), 50.0);
        for s in 100..160 {
            kpa.observe(SimTime::from_secs(s as f64), 2.0);
        }
        let decision = kpa.evaluate(SimTime::from_secs(160.0), 1);
        assert!(
            decision.stable_concurrency < 3.0,
            "the old burst should have aged out: {}",
            decision.stable_concurrency
        );
    }
}
