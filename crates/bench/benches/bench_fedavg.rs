//! Micro-benchmark: FedAvg folding (eager) and the threaded hierarchical runtime.
use criterion::{criterion_group, criterion_main, Criterion};
use lifl_core::runtime::{run_hierarchical, HierarchicalRunConfig};
use lifl_fl::aggregate::{fedavg, ModelUpdate};
use lifl_fl::DenseModel;
use lifl_types::ClientId;

fn updates(n: usize, dim: usize) -> Vec<ModelUpdate> {
    (0..n)
        .map(|i| {
            ModelUpdate::from_client(
                ClientId::new(i as u64),
                DenseModel::from_vec(vec![i as f32; dim]),
                (i + 1) as u64,
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fedavg");
    group.sample_size(20);
    let batch = updates(16, 10_000);
    group.bench_function("flat_fedavg_16x10k", |b| {
        b.iter(|| fedavg(std::hint::black_box(&batch)))
    });
    let hier = updates(8, 10_000);
    group.bench_function("threaded_hierarchy_8x10k", |b| {
        b.iter(|| {
            run_hierarchical(
                HierarchicalRunConfig {
                    leaves: 4,
                    updates_per_leaf: 2,
                    aggregation_shards: 1,
                },
                std::hint::black_box(&hier),
            )
        })
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
