//! Immutable shared objects.

use bytes::Bytes;
use lifl_types::ObjectKey;
use std::fmt;
use std::sync::Arc;

/// How the payload of a [`SharedObject`] represents a model update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PayloadEncoding {
    /// Dense little-endian `f32` parameters (the seed representation).
    #[default]
    Dense,
    /// A compressed `EncodedUpdate` wire string (self-describing header +
    /// quantized/sparsified payload). `dense_bytes` records how large the
    /// same update would have been dense, so stores can report real savings.
    Encoded {
        /// Size of the equivalent dense representation in bytes.
        dense_bytes: u64,
    },
}

/// An immutable, reference-counted byte buffer living in the shared-memory
/// object store.
///
/// Cloning a [`SharedObject`] is cheap (an atomic reference-count bump); the
/// payload is never copied, which is exactly the zero-copy hand-off the
/// paper's data plane relies on.
#[derive(Clone)]
pub struct SharedObject {
    key: ObjectKey,
    data: Bytes,
    encoding: PayloadEncoding,
}

impl SharedObject {
    /// Wraps a dense `data` payload under `key`.
    pub fn new(key: ObjectKey, data: impl Into<Bytes>) -> Self {
        SharedObject {
            key,
            data: data.into(),
            encoding: PayloadEncoding::Dense,
        }
    }

    /// Wraps a compressed wire payload under `key`, remembering the size the
    /// dense representation would have had.
    pub fn new_encoded(key: ObjectKey, data: impl Into<Bytes>, dense_bytes: u64) -> Self {
        SharedObject {
            key,
            data: data.into(),
            encoding: PayloadEncoding::Encoded { dense_bytes },
        }
    }

    /// How the payload is represented.
    pub fn encoding(&self) -> PayloadEncoding {
        self.encoding
    }

    /// Bytes the payload would occupy dense (`len()` for dense objects).
    pub fn dense_len(&self) -> u64 {
        match self.encoding {
            PayloadEncoding::Dense => self.data.len() as u64,
            PayloadEncoding::Encoded { dense_bytes } => dense_bytes,
        }
    }

    /// The key addressing this object.
    pub fn key(&self) -> ObjectKey {
        self.key
    }

    /// The payload as a byte slice (no copy).
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A cheap handle to the underlying bytes.
    pub fn bytes(&self) -> Bytes {
        self.data.clone()
    }

    /// Interprets the payload as little-endian `f32` model parameters.
    ///
    /// Trailing bytes that do not form a whole `f32` are ignored.
    pub fn as_f32_vec(&self) -> Vec<f32> {
        self.data
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Encodes `values` as a little-endian `f32` payload.
    pub fn encode_f32(values: &[f32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(values.len() * 4);
        for v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }
}

impl fmt::Debug for SharedObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedObject")
            .field("key", &self.key)
            .field("len", &self.data.len())
            .field("encoding", &self.encoding)
            .finish()
    }
}

/// A cheap, cloneable handle used when only the identity and size of an object
/// are required (for example in the simulator, where payloads are not
/// materialised).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectHandle {
    /// The key of the object.
    pub key: ObjectKey,
    /// Size of the payload in bytes.
    pub size_bytes: u64,
}

impl From<&SharedObject> for ObjectHandle {
    fn from(obj: &SharedObject) -> Self {
        ObjectHandle {
            key: obj.key(),
            size_bytes: obj.len() as u64,
        }
    }
}

/// Counts the number of strong references to the payload of `obj`, exposed for
/// tests asserting zero-copy behaviour.
pub fn payload_is_shared(a: &SharedObject, b: &SharedObject) -> bool {
    // Bytes does not expose its refcount; compare data pointers instead.
    a.data.as_ptr() == b.data.as_ptr() && a.data.len() == b.data.len()
}

/// Helper alias used by the store.
pub(crate) type ArcObject = Arc<SharedObject>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_roundtrip() {
        let values = vec![1.0f32, -2.5, 3.75];
        let encoded = SharedObject::encode_f32(&values);
        let obj = SharedObject::new(ObjectKey::from_words(1, 1), encoded);
        assert_eq!(obj.as_f32_vec(), values);
        assert_eq!(obj.len(), 12);
        assert!(!obj.is_empty());
    }

    #[test]
    fn clones_share_payload() {
        let obj = SharedObject::new(ObjectKey::from_words(0, 1), vec![9u8; 1024]);
        let copy = obj.clone();
        assert!(payload_is_shared(&obj, &copy));
        assert_eq!(copy.key(), obj.key());
    }

    #[test]
    fn handle_captures_size() {
        let obj = SharedObject::new(ObjectKey::from_words(0, 2), vec![0u8; 77]);
        let handle = ObjectHandle::from(&obj);
        assert_eq!(handle.size_bytes, 77);
        assert_eq!(handle.key, obj.key());
    }

    #[test]
    fn trailing_bytes_ignored() {
        let obj = SharedObject::new(ObjectKey::from_words(0, 3), vec![0u8; 7]);
        assert_eq!(obj.as_f32_vec().len(), 1);
    }

    #[test]
    fn encoded_objects_remember_dense_size() {
        let obj = SharedObject::new_encoded(ObjectKey::from_words(0, 4), vec![0u8; 26], 80);
        assert_eq!(obj.len(), 26);
        assert_eq!(obj.dense_len(), 80);
        assert_eq!(obj.encoding(), PayloadEncoding::Encoded { dense_bytes: 80 });
        let dense = SharedObject::new(ObjectKey::from_words(0, 5), vec![0u8; 12]);
        assert_eq!(dense.dense_len(), 12);
        assert_eq!(dense.encoding(), PayloadEncoding::Dense);
    }
}
