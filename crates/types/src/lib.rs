//! # lifl-types
//!
//! Common vocabulary shared by every crate in the LIFL reproduction: strongly
//! typed identifiers, model specifications, aggregator roles, platform
//! configuration, simulated time, resource-usage accounting and the common
//! error type.
//!
//! The types in this crate are deliberately small, `Copy` where possible, and
//! free of behaviour beyond what is needed to keep invariants (for example
//! [`ObjectKey`] is always exactly 16 bytes, matching the key
//! format of the paper's shared-memory object store, Appendix A).
//!
//! ```
//! use lifl_types::model::ModelKind;
//! use lifl_types::ids::NodeId;
//!
//! let node = NodeId::new(3);
//! let spec = ModelKind::ResNet152.spec();
//! assert_eq!(node.index(), 3);
//! assert!(spec.update_bytes > 200 * 1024 * 1024);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod admission;
pub mod codec;
pub mod config;
pub mod error;
pub mod fold;
pub mod ids;
pub mod metrics;
pub mod model;
pub mod role;
pub mod time;
pub mod topology;

pub use admission::{AdmissionConfig, AdmissionOutcome, RoundClose};
pub use codec::{CodecKind, WIRE_HEADER_BYTES};
pub use config::{AggregationTiming, ClusterConfig, LiflConfig, NodeConfig, PlacementPolicy};
pub use error::{LiflError, Result};
pub use fold::FoldPolicy;
pub use ids::{AggregatorId, ClientId, InstanceId, NodeId, ObjectKey, RoundId};
pub use metrics::{CpuCycles, ResourceUsage, RoundMetrics};
pub use model::{ModelKind, ModelSpec};
pub use role::{AggregatorRole, SystemKind};
pub use time::{SimDuration, SimTime};
pub use topology::Topology;
