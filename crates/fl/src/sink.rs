//! The aggregation-backend abstraction multi-round training drivers run
//! over.
//!
//! A training loop does not care *where* a round aggregates — one in-process
//! session tree, or a multi-node cluster federating sessions over
//! `Update::RemoteBytes`. [`Ingest`] is the contract between the two: a
//! backend accepts updates in any representation through one polymorphic
//! ingress, aggregates exactly one tree's worth of them per round, and
//! returns the global aggregate with its wire accounting. `lifl-core`
//! implements it for both `Session` and `Cluster`, so the same training
//! loop — codec handling, error feedback, metrics — runs bit-exactly over
//! either.

use crate::aggregate::ModelUpdate;
use crate::update::Update;
use lifl_types::{AdmissionOutcome, CodecKind, Result};

/// What one aggregated round produced, in backend-agnostic form.
#[derive(Debug, Clone)]
pub struct RoundAggregate {
    /// The aggregated global model (decoded to dense parameters).
    pub update: ModelUpdate,
    /// Total data-plane payload bytes the round's ingests occupied in their
    /// wire form (summed across nodes for a federated backend).
    pub ingress_wire_bytes: u64,
    /// Client updates the round aggregated.
    pub updates_ingested: u64,
}

/// An aggregation backend a multi-round FL driver can ingest into: one
/// round-sized sink of [`Update`]s that aggregates on demand.
///
/// Implementations must be *round-reusable*: after [`Ingest::aggregate_round`]
/// returns (or the round is discarded), the next round's ingests begin
/// immediately, and any per-client codec state (error-feedback residuals)
/// persists across rounds.
pub trait Ingest {
    /// Accepts one update into the current round, in whatever representation
    /// it arrived.
    ///
    /// # Errors
    /// Fails if the round is already full, or on any store/codec error. A
    /// failed ingest counts nothing toward the round.
    fn ingest_update(&mut self, update: Update) -> Result<()>;

    /// Offers one update under admission control, answering with typed
    /// backpressure instead of an error when the round is full.
    ///
    /// The default implementation has no backlog: it admits while the round
    /// has room and rejects (with a zero retry hint) once it is full, so
    /// unbounded backends keep their legacy semantics. Bounded backends
    /// override this to park overflow in their admission queues.
    ///
    /// # Errors
    /// Fails only on store/codec errors; a full round is an outcome, not an
    /// error.
    fn try_ingest(&mut self, update: Update) -> Result<AdmissionOutcome> {
        match self.ingest_update(update) {
            Ok(()) => Ok(AdmissionOutcome::Admitted),
            Err(lifl_types::LiflError::InvalidConfig(msg)) if msg.contains("round is full") => {
                Ok(AdmissionOutcome::Rejected {
                    retry_after: lifl_types::SimDuration::ZERO,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Updates one round aggregates (the capacity of the backend's tree).
    fn round_capacity(&self) -> usize;

    /// The wire codec the backend applies at its ingress.
    fn ingress_codec(&self) -> CodecKind;

    /// Aggregates the ingested round and returns the global aggregate,
    /// leaving the backend ready for the next round.
    ///
    /// # Errors
    /// Fails if the ingested updates do not exactly fill the backend's tree,
    /// or on any store/codec/aggregation error.
    fn aggregate_round(&mut self) -> Result<RoundAggregate>;

    /// Discards the current (not yet aggregated) round, returning the
    /// backend to an empty round. Per-client codec state is kept.
    fn discard_round(&mut self);
}
