//! The in-process threaded runtime: real aggregation of real model parameters
//! through the shared-memory object store, exercised by examples, integration
//! tests and the data-plane micro-benchmarks.
//!
//! Each aggregator of a two-level hierarchy runs the step-based processing
//! model of Appendix G on its own thread; model updates are placed in shared
//! memory by the gateway and only 16-byte object keys travel between threads.

use crate::aggregator::AggregatorRuntime;
use crate::gateway::Gateway;
use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::codec::{EncodedView, ErrorFeedback, UpdateCodec};
use lifl_fl::DenseModel;
use lifl_shmem::queue::QueuedUpdate;
use lifl_shmem::{InPlaceQueue, ObjectStore, StoreStats};
use lifl_types::{AggregatorId, AggregatorRole, ClientId, CodecKind, LiflError, NodeId, Result};

/// Configuration of an in-process hierarchical aggregation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalRunConfig {
    /// Number of leaf aggregators.
    pub leaves: usize,
    /// Updates expected per leaf (the leaf's aggregation goal).
    pub updates_per_leaf: usize,
    /// Parameter-vector shards every aggregator folds batches across
    /// (`LiflConfig.aggregation_shards`; 1 = the sequential eager fold).
    pub aggregation_shards: usize,
}

impl Default for HierarchicalRunConfig {
    fn default() -> Self {
        HierarchicalRunConfig {
            leaves: 4,
            updates_per_leaf: 2,
            aggregation_shards: 1,
        }
    }
}

/// Runs a complete two-level hierarchical aggregation over the given client
/// updates using real threads and shared memory, returning the global model.
///
/// The updates are distributed to leaves round-robin; each leaf aggregates its
/// share eagerly, sends its intermediate to the top aggregator, and the top
/// produces the global model once every leaf has reported.
///
/// # Errors
/// Fails if `updates` does not evenly cover `leaves * updates_per_leaf`, or on
/// any store/aggregation error.
pub fn run_hierarchical(
    config: HierarchicalRunConfig,
    updates: &[ModelUpdate],
) -> Result<ModelUpdate> {
    let expected = config.leaves * config.updates_per_leaf;
    if config.leaves == 0 || updates.len() != expected {
        return Err(LiflError::InvalidConfig(format!(
            "expected {} updates ({} leaves x {}), got {}",
            expected,
            config.leaves,
            config.updates_per_leaf,
            updates.len()
        )));
    }
    let store = ObjectStore::new();
    let node = NodeId::new(0);
    let mut gateway = Gateway::new(node, store.clone());

    // Top aggregator consumes one intermediate per leaf.
    let top_inbox = InPlaceQueue::new();
    let mut top = AggregatorRuntime::new(
        AggregatorId::new(1000),
        AggregatorRole::Top,
        config.leaves as u64,
        store.clone(),
        top_inbox.clone(),
    )?;
    top.set_shards(config.aggregation_shards);

    // Spawn leaf threads.
    let mut handles = Vec::new();
    for leaf_idx in 0..config.leaves {
        let inbox = gateway.register_aggregator(AggregatorId::new(leaf_idx as u64));
        // Queue this leaf's share of updates through the gateway.
        for (k, update) in updates
            .iter()
            .enumerate()
            .filter(|(k, _)| k % config.leaves == leaf_idx)
        {
            let client = update.client.unwrap_or(ClientId::new(k as u64));
            gateway.ingest_client_update(
                client,
                AggregatorId::new(leaf_idx as u64),
                update.model.as_slice(),
                update.samples,
            )?;
        }
        let store = store.clone();
        let goal = config.updates_per_leaf as u64;
        let shards = config.aggregation_shards;
        let handle = std::thread::spawn(move || -> Result<QueuedUpdate> {
            let mut leaf = AggregatorRuntime::new(
                AggregatorId::new(leaf_idx as u64),
                AggregatorRole::Leaf,
                goal,
                store,
                inbox,
            )?;
            leaf.set_shards(shards);
            leaf.run_to_completion()
        });
        handles.push(handle);
    }
    // Enqueue intermediates in leaf order (not completion order) so the top
    // fold applies them deterministically — results are bit-identical
    // run-to-run regardless of thread scheduling.
    for handle in handles {
        let intermediate = handle
            .join()
            .map_err(|_| LiflError::Simulation("leaf thread panicked".to_string()))??;
        top_inbox.enqueue(intermediate);
    }

    let result = top.run_to_completion()?;
    let object = store.get(&result.key)?;
    Ok(ModelUpdate::intermediate(
        DenseModel::from_vec(object.as_f32_vec()),
        result.weight,
    ))
}

/// What a codec-aware hierarchical run produced, beyond the global model:
/// the shared-memory accounting that proves the compressed representation
/// actually flowed through the store.
#[derive(Debug, Clone)]
pub struct HierarchicalRunReport {
    /// The aggregated global model.
    pub update: ModelUpdate,
    /// Object-store statistics at the end of the run (encoded puts, real and
    /// dense-equivalent bytes).
    pub store_stats: StoreStats,
    /// Total bytes client updates occupied on the data plane (encoded form).
    pub client_wire_bytes: u64,
}

/// Runs the same two-level hierarchy as [`run_hierarchical`], but every
/// update travels in its `codec`-encoded wire form: clients encode with
/// per-client error feedback, each aggregator decodes before folding and
/// re-encodes its intermediate (decode-fold-encode), and the compressed
/// payloads are what actually sit in shared memory.
///
/// With [`CodecKind::Identity`] this path is bit-exact with
/// [`run_hierarchical`].
///
/// # Errors
/// Same conditions as [`run_hierarchical`], plus codec parse failures.
pub fn run_hierarchical_with_codec(
    config: HierarchicalRunConfig,
    updates: &[ModelUpdate],
    codec: CodecKind,
) -> Result<HierarchicalRunReport> {
    let expected = config.leaves * config.updates_per_leaf;
    if config.leaves == 0 || updates.len() != expected {
        return Err(LiflError::InvalidConfig(format!(
            "expected {} updates ({} leaves x {}), got {}",
            expected,
            config.leaves,
            config.updates_per_leaf,
            updates.len()
        )));
    }
    let store = ObjectStore::new();
    let node = NodeId::new(0);
    let mut gateway = Gateway::new(node, store.clone());
    let mut feedback = ErrorFeedback::new(UpdateCodec::with_seed(codec, 0x5EED));

    let top_inbox = InPlaceQueue::new();
    let mut top = AggregatorRuntime::with_codec(
        AggregatorId::new(1000),
        AggregatorRole::Top,
        config.leaves as u64,
        store.clone(),
        top_inbox.clone(),
        UpdateCodec::with_seed(codec, 1000),
    )?;
    top.set_shards(config.aggregation_shards);

    let mut client_wire_bytes = 0u64;
    let mut handles = Vec::new();
    for leaf_idx in 0..config.leaves {
        let inbox = gateway.register_aggregator(AggregatorId::new(leaf_idx as u64));
        for (k, update) in updates
            .iter()
            .enumerate()
            .filter(|(k, _)| k % config.leaves == leaf_idx)
        {
            let client = update.client.unwrap_or(ClientId::new(k as u64));
            if codec.is_lossless() {
                // Identity: the dense payload *is* the wire form; use the
                // seed ingest path so the run stays bit-exact with it.
                client_wire_bytes += update.model.byte_size();
                gateway.ingest_client_update(
                    client,
                    AggregatorId::new(leaf_idx as u64),
                    update.model.as_slice(),
                    update.samples,
                )?;
            } else {
                let encoded = feedback.encode(client, &update.model)?;
                client_wire_bytes += encoded.wire_bytes();
                gateway.ingest_encoded_update(
                    client,
                    AggregatorId::new(leaf_idx as u64),
                    &encoded,
                    update.samples,
                )?;
            }
        }
        let store = store.clone();
        let goal = config.updates_per_leaf as u64;
        let shards = config.aggregation_shards;
        let handle = std::thread::spawn(move || -> Result<QueuedUpdate> {
            let mut leaf = AggregatorRuntime::with_codec(
                AggregatorId::new(leaf_idx as u64),
                AggregatorRole::Leaf,
                goal,
                store,
                inbox,
                UpdateCodec::with_seed(codec, leaf_idx as u64),
            )?;
            leaf.set_shards(shards);
            leaf.run_to_completion()
        });
        handles.push(handle);
    }
    // Deterministic fixed-tree merge order: leaf intermediates fold at the
    // top in leaf-index order, independent of thread completion order.
    for handle in handles {
        let intermediate = handle
            .join()
            .map_err(|_| LiflError::Simulation("leaf thread panicked".to_string()))??;
        top_inbox.enqueue(intermediate);
    }

    let result = top.run_to_completion()?;
    let object = store.get(&result.key)?;
    let model = if result.encoded {
        // The one remaining full-decode site: parse the header in place and
        // dequantize straight into the output buffer (no body copy).
        let view = EncodedView::parse(object.as_slice())?;
        let mut out = vec![0.0f32; view.dim()];
        view.decode_into(&mut out)?;
        DenseModel::from_vec(out)
    } else {
        DenseModel::from_vec(object.as_f32_vec())
    };
    Ok(HierarchicalRunReport {
        update: ModelUpdate::intermediate(model, result.weight),
        store_stats: store.stats(),
        client_wire_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifl_fl::aggregate::fedavg;

    fn updates(n: usize, dim: usize) -> Vec<ModelUpdate> {
        (0..n)
            .map(|i| {
                let values: Vec<f32> = (0..dim).map(|d| (i * dim + d) as f32 * 0.1).collect();
                ModelUpdate::from_client(
                    ClientId::new(i as u64),
                    DenseModel::from_vec(values),
                    (i + 1) as u64,
                )
            })
            .collect()
    }

    #[test]
    fn threaded_hierarchy_matches_flat_fedavg() {
        let updates = updates(8, 16);
        let config = HierarchicalRunConfig {
            leaves: 4,
            updates_per_leaf: 2,
            aggregation_shards: 1,
        };
        let hierarchical = run_hierarchical(config, &updates).unwrap();
        let flat = fedavg(&updates).unwrap();
        assert_eq!(hierarchical.samples, flat.samples);
        for (a, b) in hierarchical
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn mismatched_update_count_is_rejected() {
        let updates = updates(5, 4);
        let config = HierarchicalRunConfig {
            leaves: 4,
            updates_per_leaf: 2,
            aggregation_shards: 1,
        };
        assert!(run_hierarchical(config, &updates).is_err());
        assert!(run_hierarchical(
            HierarchicalRunConfig {
                leaves: 0,
                updates_per_leaf: 2,
                aggregation_shards: 1
            },
            &[]
        )
        .is_err());
    }

    #[test]
    fn identity_codec_run_is_bit_exact_with_pre_codec_path() {
        let updates = updates(8, 16);
        let config = HierarchicalRunConfig {
            leaves: 4,
            updates_per_leaf: 2,
            aggregation_shards: 1,
        };
        let pre_codec = run_hierarchical(config, &updates).unwrap();
        let report = run_hierarchical_with_codec(config, &updates, CodecKind::Identity).unwrap();
        assert_eq!(report.update.samples, pre_codec.samples);
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(pre_codec.model.as_slice())
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "identity path diverged: {a} vs {b}"
            );
        }
        assert_eq!(report.store_stats.encoded_puts, 0);
    }

    #[test]
    fn quantized_codec_run_stays_close_and_compresses() {
        let updates = updates(8, 32);
        let config = HierarchicalRunConfig {
            leaves: 4,
            updates_per_leaf: 2,
            aggregation_shards: 1,
        };
        let flat = lifl_fl::aggregate::fedavg(&updates).unwrap();
        let report = run_hierarchical_with_codec(config, &updates, CodecKind::Uniform8).unwrap();
        assert_eq!(report.update.samples, flat.samples);
        let scale_bound = updates
            .iter()
            .flat_map(|u| u.model.as_slice())
            .fold(0.0f32, |a, v| a.max(v.abs()))
            / 127.0;
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            // Two quantization stages (client + leaf) bound the error.
            assert!((a - b).abs() <= 3.0 * scale_bound, "{a} vs {b}");
        }
        assert!(report.store_stats.encoded_puts > 0);
        assert!(report.store_stats.bytes_saved() > 0);
        assert!(report.client_wire_bytes < updates.len() as u64 * 32 * 4);
    }

    #[test]
    fn single_leaf_degenerates_to_flat() {
        let updates = updates(3, 8);
        let config = HierarchicalRunConfig {
            leaves: 1,
            updates_per_leaf: 3,
            aggregation_shards: 1,
        };
        let result = run_hierarchical(config, &updates).unwrap();
        let flat = fedavg(&updates).unwrap();
        for (a, b) in result.model.as_slice().iter().zip(flat.model.as_slice()) {
            assert!((a - b).abs() < 1e-4);
        }
    }
}
