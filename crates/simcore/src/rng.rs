//! Deterministic random-number helpers for simulations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic random-number generator with the distributions the
/// experiments need (uniform, exponential inter-arrivals, choice, shuffle).
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform value in `[low, high)`. Returns `low` when the range is empty.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        if high <= low {
            return low;
        }
        self.inner.gen_range(low..high)
    }

    /// Uniform integer in `[0, n)`. Returns 0 when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            self.inner.gen_range(0..n)
        }
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.inner.gen_range(1e-12..1.0);
        -mean * u.ln()
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = self.inner.gen_range(1e-12..1.0);
        let u2: f64 = self.inner.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Samples from a symmetric Dirichlet distribution of dimension `k` with
    /// concentration `alpha`, used for non-IID client label skew.
    pub fn dirichlet(&mut self, k: usize, alpha: f64) -> Vec<f64> {
        // Gamma(alpha, 1) sampling via Marsaglia–Tsang; for alpha < 1 use the
        // boosting identity Gamma(a) = Gamma(a+1) * U^(1/a).
        let mut draws = Vec::with_capacity(k);
        for _ in 0..k {
            draws.push(self.gamma(alpha.max(1e-3)));
        }
        let sum: f64 = draws.iter().sum::<f64>().max(1e-12);
        draws.iter().map(|d| d / sum).collect()
    }

    fn gamma(&mut self, alpha: f64) -> f64 {
        if alpha < 1.0 {
            let u: f64 = self.inner.gen_range(1e-12..1.0);
            return self.gamma(alpha + 1.0) * u.powf(1.0 / alpha);
        }
        let d = alpha - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal(0.0, 1.0);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = self.inner.gen_range(1e-12..1.0);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Boolean with the given probability of being true.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::from_seed(1);
        for _ in 0..1000 {
            let v = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
        assert_eq!(rng.uniform(5.0, 5.0), 5.0);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::from_seed(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean {mean}");
        assert_eq!(rng.exponential(0.0), 0.0);
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut rng = SimRng::from_seed(3);
        for alpha in [0.1, 0.5, 1.0, 5.0] {
            let probs = rng.dirichlet(10, alpha);
            assert_eq!(probs.len(), 10);
            let sum: f64 = probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(probs.iter().all(|p| *p >= 0.0));
        }
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = SimRng::from_seed(4);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_handles_empty() {
        let mut rng = SimRng::from_seed(5);
        assert_eq!(rng.index(0), 0);
        for _ in 0..100 {
            assert!(rng.index(7) < 7);
        }
    }
}
