//! Heterogeneous worker-node fleets.
//!
//! The paper's testbed is homogeneous ("our testbed nodes are homogeneous,
//! hence all MC_i are the same") but the design explicitly allows
//! heterogeneous nodes: "with heterogeneous nodes, MC_i may vary" (§6.1,
//! footnote 6). The residual-capacity formulation of §5.1 already handles
//! that; this module provides the fleet description the placement engine and
//! hierarchy planner need when nodes differ — per-node core counts, clock
//! speeds and maximum service capacities — plus the offline MC_i estimation
//! procedure of Appendix E.

use crate::placement::NodeCapacity;
use lifl_types::{ClusterConfig, LiflError, NodeConfig, NodeId, Result, SimDuration};
use serde::{Deserialize, Serialize};

/// A fleet of (possibly heterogeneous) worker nodes available for aggregation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeFleet {
    nodes: Vec<(NodeId, NodeConfig)>,
}

impl NodeFleet {
    /// Builds a homogeneous fleet from the paper-style cluster description.
    pub fn homogeneous(cluster: &ClusterConfig) -> Self {
        let nodes = (0..cluster.aggregation_nodes as u64)
            .map(|i| (NodeId::new(i), cluster.node))
            .collect();
        NodeFleet { nodes }
    }

    /// Builds a heterogeneous fleet from explicit per-node configurations.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] for an empty fleet or a node with
    /// zero capacity or zero cores.
    pub fn heterogeneous(nodes: Vec<NodeConfig>) -> Result<Self> {
        if nodes.is_empty() {
            return Err(LiflError::InvalidConfig(
                "fleet must contain at least one node".into(),
            ));
        }
        for (i, node) in nodes.iter().enumerate() {
            if node.cores == 0 || node.max_service_capacity == 0 {
                return Err(LiflError::InvalidConfig(format!(
                    "node {i} must have non-zero cores and service capacity"
                )));
            }
        }
        Ok(NodeFleet {
            nodes: nodes
                .into_iter()
                .enumerate()
                .map(|(i, cfg)| (NodeId::new(i as u64), cfg))
                .collect(),
        })
    }

    /// Number of nodes in the fleet.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over the fleet's nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NodeConfig)> {
        self.nodes.iter().map(|(id, cfg)| (*id, cfg))
    }

    /// The configuration of `node`.
    ///
    /// # Errors
    /// Returns [`LiflError::UnknownNode`] for a node outside the fleet.
    pub fn node(&self, node: NodeId) -> Result<&NodeConfig> {
        self.nodes
            .iter()
            .find(|(id, _)| *id == node)
            .map(|(_, cfg)| cfg)
            .ok_or(LiflError::UnknownNode(node))
    }

    /// Total service capacity Σ MC_i.
    pub fn total_capacity(&self) -> u64 {
        self.nodes
            .iter()
            .map(|(_, cfg)| cfg.max_service_capacity as u64)
            .sum()
    }

    /// Fresh per-node placement state (empty assignment, per-node MC_i),
    /// ready for [`PlacementEngine::place_batch`](crate::placement::PlacementEngine::place_batch).
    pub fn capacities(&self) -> Vec<NodeCapacity> {
        self.nodes
            .iter()
            .map(|(id, cfg)| NodeCapacity::new(*id, cfg.max_service_capacity))
            .collect()
    }

    /// Whether every node has the same configuration.
    pub fn is_homogeneous(&self) -> bool {
        match self.nodes.first() {
            Some((_, first)) => self.nodes.iter().all(|(_, cfg)| cfg == first),
            None => true,
        }
    }
}

/// Offline estimation of a node's maximum service capacity MC_i (Appendix E):
/// the arrival rate is increased until the average execution time inflates
/// noticeably; MC_i = k'_i × E'_i at that point.
///
/// `base_exec_time` is the per-update aggregation time on an unloaded node and
/// `cores` the cores available for aggregation. The execution-time inflation
/// model is an M/M/c-style slowdown: beyond `cores` concurrent updates the
/// execution time grows linearly with the over-subscription factor.
pub fn estimate_max_capacity(base_exec_time: SimDuration, cores: u32, inflation_limit: f64) -> u32 {
    let cores = cores.max(1);
    let limit = inflation_limit.max(1.0);
    let base = base_exec_time.as_secs().max(1e-9);
    let mut best = 1u32;
    for k in 1..=(cores * 64) {
        // Execution time once k updates run concurrently on `cores` cores.
        let oversubscription = (k as f64 / cores as f64).max(1.0);
        let exec = base * oversubscription;
        if exec > base * limit {
            break;
        }
        best = k;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementEngine;
    use lifl_types::PlacementPolicy;

    fn small_node(capacity: u32, cores: u32) -> NodeConfig {
        NodeConfig {
            cores,
            max_service_capacity: capacity,
            ..NodeConfig::default()
        }
    }

    #[test]
    fn homogeneous_fleet_matches_cluster_config() {
        let cluster = ClusterConfig::default();
        let fleet = NodeFleet::homogeneous(&cluster);
        assert_eq!(fleet.len(), 5);
        assert!(fleet.is_homogeneous());
        assert_eq!(fleet.total_capacity(), cluster.total_capacity());
        assert_eq!(fleet.capacities().len(), 5);
        assert!(fleet.node(NodeId::new(0)).is_ok());
        assert!(fleet.node(NodeId::new(99)).is_err());
    }

    #[test]
    fn heterogeneous_fleet_reports_per_node_capacity() {
        let fleet = NodeFleet::heterogeneous(vec![
            small_node(20, 64),
            small_node(8, 16),
            small_node(40, 128),
        ])
        .unwrap();
        assert_eq!(fleet.len(), 3);
        assert!(!fleet.is_homogeneous());
        assert_eq!(fleet.total_capacity(), 68);
        assert_eq!(fleet.node(NodeId::new(1)).unwrap().max_service_capacity, 8);
        let names: Vec<u64> = fleet.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(names, vec![0, 1, 2]);
    }

    #[test]
    fn invalid_fleets_are_rejected() {
        assert!(NodeFleet::heterogeneous(vec![]).is_err());
        assert!(NodeFleet::heterogeneous(vec![small_node(0, 4)]).is_err());
        assert!(NodeFleet::heterogeneous(vec![small_node(4, 0)]).is_err());
    }

    #[test]
    fn placement_respects_heterogeneous_capacities() {
        // Node 1 is tiny; BestFit must never assign it more than its MC_i.
        let fleet = NodeFleet::heterogeneous(vec![
            small_node(20, 64),
            small_node(4, 8),
            small_node(20, 64),
        ])
        .unwrap();
        let engine = PlacementEngine::new(PlacementPolicy::BestFit);
        let mut capacities = fleet.capacities();
        let outcome = engine.place_batch(fleet.total_capacity(), &mut capacities);
        assert_eq!(outcome.overflow, 0);
        let assigned_to_small = outcome
            .assignments
            .iter()
            .filter(|n| **n == NodeId::new(1))
            .count();
        assert!(
            assigned_to_small <= 4,
            "small node got {assigned_to_small} > MC_i=4"
        );
        // Every update was placed.
        assert_eq!(outcome.assignments.len() as u64, fleet.total_capacity());
    }

    #[test]
    fn best_fit_prefers_filling_small_nodes_first() {
        let fleet = NodeFleet::heterogeneous(vec![small_node(20, 64), small_node(4, 8)]).unwrap();
        let engine = PlacementEngine::new(PlacementPolicy::BestFit);
        let mut capacities = fleet.capacities();
        let outcome = engine.place_batch(4, &mut capacities);
        // All four fit on the small node, leaving the big node untouched.
        assert!(outcome.assignments.iter().all(|n| *n == NodeId::new(1)));
        assert_eq!(outcome.nodes_used, 1);
    }

    #[test]
    fn capacity_estimation_matches_core_count_scaling() {
        let base = SimDuration::from_secs(1.0);
        // With a 1.5x inflation budget, capacity lands at 1.5x the core count.
        let capacity = estimate_max_capacity(base, 16, 1.5);
        assert_eq!(capacity, 24);
        // More cores => proportionally more capacity.
        assert!(estimate_max_capacity(base, 64, 1.5) > capacity);
        // A tight inflation budget pins capacity to the core count.
        assert_eq!(estimate_max_capacity(base, 8, 1.0), 8);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::placement::PlacementEngine;
    use lifl_types::PlacementPolicy;
    use proptest::prelude::*;

    fn arbitrary_fleet() -> impl Strategy<Value = NodeFleet> {
        proptest::collection::vec((1u32..40, 1u32..128), 1..8).prop_map(|nodes| {
            NodeFleet::heterogeneous(
                nodes
                    .into_iter()
                    .map(|(capacity, cores)| NodeConfig {
                        max_service_capacity: capacity,
                        cores,
                        ..NodeConfig::default()
                    })
                    .collect(),
            )
            .expect("non-empty fleet with positive capacities")
        })
    }

    proptest! {
        #[test]
        fn placement_never_exceeds_any_nodes_capacity(
            fleet in arbitrary_fleet(),
            policy in proptest::sample::select(vec![
                PlacementPolicy::BestFit,
                PlacementPolicy::FirstFit,
                PlacementPolicy::WorstFit,
            ]),
        ) {
            let engine = PlacementEngine::new(policy);
            let demand = fleet.total_capacity();
            let mut capacities = fleet.capacities();
            let outcome = engine.place_batch(demand, &mut capacities);
            prop_assert_eq!(outcome.overflow, 0);
            prop_assert_eq!(outcome.assignments.len() as u64, demand);
            for cap in &capacities {
                let mc = fleet.node(cap.node).unwrap().max_service_capacity;
                prop_assert!(cap.assigned <= mc, "{} assigned > MC {}", cap.assigned, mc);
            }
        }

        #[test]
        fn capacity_estimate_is_monotone_in_cores(
            cores_a in 1u32..64,
            cores_b in 1u32..64,
            limit in 1.0f64..4.0,
        ) {
            let base = SimDuration::from_secs(0.5);
            let (lo, hi) = if cores_a <= cores_b { (cores_a, cores_b) } else { (cores_b, cores_a) };
            prop_assert!(estimate_max_capacity(base, lo, limit) <= estimate_max_capacity(base, hi, limit));
        }
    }
}
