//! The fault tier: a hostile-fleet acceptance suite for the cluster's
//! failure-handling machinery (§3).
//!
//! * `node_kill` — a child [`Session`](lifl_core::session::Session) killed at
//!   every phase of a round (mid-ingest, pre-drive, at every hop boundary
//!   mid-drive, after its own export, between rounds), with the round
//!   surviving via refill + retry-with-dedup, and the top-host kill restoring
//!   the latest checkpoint bit-exactly.
//! * `corruption` — corrupted client updates (adversarial scaling and random
//!   byte flips) at 10–30% of the fleet: robust fold policies keep the global
//!   aggregate inside the honest envelope where plain FedAvg diverges.
//! * `policy_exactness` — the [`FoldPolicy::FedAvg`](lifl_types::FoldPolicy)
//!   path is bit-exact with the default (pre-policy) path for every
//!   `CodecKind` × shard count, over both backends.
//! * `resilient_driver` — the multi-round training driver survives child
//!   kills by re-sending cached updates and recovers its global model from
//!   the checkpoint after a top-host kill.

mod corruption;
mod node_kill;
mod policy_exactness;
mod resilient_driver;
mod util;
