//! Model specifications.
//!
//! The evaluation in the paper uses three ResNet variants whose *update sizes*
//! drive all data-plane costs: ResNet-18 (~44 MB), ResNet-34 (~83 MB) and
//! ResNet-152 (~232 MB) (§4.1, §6.1). The reproduction keeps those byte sizes
//! for every system-level cost even though the training substrate uses a much
//! smaller synthetic model (see DESIGN.md §1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of one f32 parameter in bytes.
pub const BYTES_PER_PARAM: u64 = 4;

/// The model families used in the paper's evaluation plus a custom escape hatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// ResNet-18, ~44 MB update.
    ResNet18,
    /// ResNet-34, ~83 MB update.
    ResNet34,
    /// ResNet-152, ~232 MB update.
    ResNet152,
    /// A custom model with an explicit update size in bytes.
    Custom {
        /// Serialized update size in bytes.
        update_bytes: u64,
    },
}

impl ModelKind {
    /// Returns the full specification for this model kind (allocates the
    /// owned name; hot paths should prefer the direct accessors below).
    pub fn spec(self) -> ModelSpec {
        ModelSpec {
            kind: self,
            name: self.name().to_string(),
            update_bytes: self.update_bytes(),
            parameters: self.parameters(),
        }
    }

    /// Human-readable name (no allocation).
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::ResNet18 => "ResNet-18",
            ModelKind::ResNet34 => "ResNet-34",
            ModelKind::ResNet152 => "ResNet-152",
            ModelKind::Custom { .. } => "custom",
        }
    }

    /// Number of trainable parameters (no allocation).
    pub fn parameters(self) -> u64 {
        match self {
            ModelKind::ResNet18 => 11_689_512,
            ModelKind::ResNet34 => 21_797_672,
            ModelKind::ResNet152 => 60_192_808,
            ModelKind::Custom { update_bytes } => update_bytes / BYTES_PER_PARAM,
        }
    }

    /// Serialized update size in bytes (no allocation).
    pub fn update_bytes(self) -> u64 {
        match self {
            ModelKind::ResNet18 => 44 * 1024 * 1024,
            ModelKind::ResNet34 => 83 * 1024 * 1024,
            ModelKind::ResNet152 => 232 * 1024 * 1024,
            ModelKind::Custom { update_bytes } => update_bytes,
        }
    }

    /// Serialized update size in mebibytes.
    pub fn update_mib(self) -> f64 {
        self.update_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// The three paper models in increasing size order.
    pub fn paper_models() -> [ModelKind; 3] {
        [
            ModelKind::ResNet18,
            ModelKind::ResNet34,
            ModelKind::ResNet152,
        ]
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Full specification of a model used as an FL workload.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelSpec {
    /// The model family.
    pub kind: ModelKind,
    /// Human-readable name.
    pub name: String,
    /// Serialized model-update size in bytes.
    pub update_bytes: u64,
    /// Number of trainable parameters.
    pub parameters: u64,
}

impl ModelSpec {
    /// Update size in mebibytes.
    pub fn update_mib(&self) -> f64 {
        self.update_bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match() {
        assert_eq!(ModelKind::ResNet18.update_mib().round() as u64, 44);
        assert_eq!(ModelKind::ResNet34.update_mib().round() as u64, 83);
        assert_eq!(ModelKind::ResNet152.update_mib().round() as u64, 232);
    }

    #[test]
    fn sizes_are_monotone() {
        let [r18, r34, r152] = ModelKind::paper_models();
        assert!(r18.update_bytes() < r34.update_bytes());
        assert!(r34.update_bytes() < r152.update_bytes());
    }

    #[test]
    fn custom_model_derives_param_count() {
        let spec = ModelKind::Custom { update_bytes: 400 }.spec();
        assert_eq!(spec.parameters, 100);
        assert_eq!(spec.name, "custom");
    }

    #[test]
    fn display_uses_paper_names() {
        assert_eq!(ModelKind::ResNet152.to_string(), "ResNet-152");
    }

    #[test]
    fn spec_serde_roundtrip_preserves_owned_name() {
        let spec = ModelKind::ResNet34.spec();
        let json = serde_json::to_string(&spec).unwrap();
        let back: ModelSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.name, "ResNet-34");
    }
}
