//! The live workspace must be lint-clean: this is the same invariant CI's
//! `lifl-lint` step enforces, kept as a test so `cargo test` alone catches a
//! violation without running the binary.

use lifl_lint::{run, Rule};
use std::path::PathBuf;

#[test]
fn live_workspace_is_lint_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = run(&root, &Rule::ALL).expect("workspace scans");
    assert!(
        report.findings.is_empty(),
        "live workspace has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The walker saw the real tree, not an empty directory.
    assert!(report.files_scanned > 100, "{} files", report.files_scanned);
    assert!(report.ci_sync_commands.is_some());
}
