//! Quickstart: aggregate a handful of client updates through LIFL's
//! shared-memory hierarchy and simulate one cluster-scale round.
//!
//! Run with: `cargo run -p lifl-examples --example quickstart`

use lifl_core::platform::{LiflPlatform, RoundSpec};
use lifl_core::session::{SessionBuilder, Update};
use lifl_examples::demo_updates;
use lifl_types::{ClusterConfig, CodecKind, LiflConfig, ModelKind, SimTime, Topology};

fn main() {
    // 1. Real in-process aggregation over shared memory (Appendix G runtime):
    //    one builder-driven session owns the gateway, the store and the tree.
    let updates = demo_updates(8, 64);
    let mut session = SessionBuilder::new()
        .topology(Topology::two_level(4, 2))
        .build()
        .expect("session");
    session
        .ingest_all(updates.iter().cloned().map(Update::Dense))
        .expect("ingest");
    let report = session.drive().expect("hierarchical aggregation");
    println!(
        "aggregated {} client updates ({} samples), ||w|| = {:.4}",
        updates.len(),
        report.update.samples,
        report.update.model.l2_norm()
    );

    // 1b. The same entry point scales to deeper trees and lossy codecs: a
    //     3-level tree whose updates travel 8-bit quantized.
    let updates = demo_updates(8, 64);
    let mut deep = SessionBuilder::new()
        .topology(Topology::new(vec![2, 2, 2]).expect("topology"))
        .codec(CodecKind::Uniform8)
        .build()
        .expect("session");
    deep.ingest_all(updates.into_iter().map(Update::Dense))
        .expect("ingest");
    let deep_report = deep.drive().expect("deep aggregation");
    println!(
        "3-level quantized session: {} ({} wire bytes, {} saved in shmem)",
        deep_report.topology,
        deep_report.ingress_wire_bytes,
        deep_report.store_stats.bytes_saved()
    );

    // 2. Cluster-scale simulation of one LIFL round with 20 ResNet-152 updates.
    let mut platform = LiflPlatform::new(ClusterConfig::default(), LiflConfig::default());
    let arrivals: Vec<SimTime> = (0..20)
        .map(|i| SimTime::from_secs(i as f64 * 0.5))
        .collect();
    let report = platform.run_round(&RoundSpec::new(ModelKind::ResNet152, arrivals));
    println!(
        "simulated round: ACT = {:.1}s, CPU = {:.1}s, nodes used = {}, aggregators created = {}",
        report.metrics.aggregation_completion_time.as_secs(),
        report.metrics.cpu_time.as_secs(),
        report.metrics.nodes_used,
        report.metrics.aggregators_created
    );
}
