//! The metrics map: the eBPF map the sidecar writes per-aggregator metrics into
//! and the LIFL agent drains toward the metric server (§4.3).

use crate::map::BpfMap;
use lifl_types::{AggregatorId, SimDuration, SimTime};

/// Per-aggregator metrics accumulated in kernel space by the sidecar.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricSample {
    /// Number of model updates this aggregator has sent onward.
    pub updates_sent: u64,
    /// Number of model updates received/aggregated.
    pub updates_aggregated: u64,
    /// Cumulative execution time of the aggregation task.
    pub total_exec_time: SimDuration,
    /// Time of the most recent observation.
    pub last_seen: SimTime,
}

impl MetricSample {
    /// Average execution time per aggregated update; zero if nothing aggregated.
    pub fn avg_exec_time(&self) -> SimDuration {
        if self.updates_aggregated == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs(self.total_exec_time.as_secs() / self.updates_aggregated as f64)
        }
    }
}

/// The per-node metrics map.
#[derive(Debug, Clone)]
pub struct MetricsMap {
    map: BpfMap<AggregatorId, MetricSample>,
}

impl Default for MetricsMap {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsMap {
    /// Creates an empty metrics map.
    pub fn new() -> Self {
        MetricsMap {
            map: BpfMap::new(0),
        }
    }

    /// Records that `agg` aggregated one update taking `exec_time`, at `now`.
    pub fn record_aggregation(&self, agg: AggregatorId, exec_time: SimDuration, now: SimTime) {
        let mut sample = self.map.lookup_elem(&agg).unwrap_or_default();
        sample.updates_aggregated += 1;
        sample.total_exec_time += exec_time;
        sample.last_seen = now;
        self.map.update_elem(agg, sample);
    }

    /// Records that `agg` sent one update onward, at `now`.
    pub fn record_send(&self, agg: AggregatorId, now: SimTime) {
        let mut sample = self.map.lookup_elem(&agg).unwrap_or_default();
        sample.updates_sent += 1;
        sample.last_seen = now;
        self.map.update_elem(agg, sample);
    }

    /// The current sample for `agg`.
    pub fn sample(&self, agg: AggregatorId) -> Option<MetricSample> {
        self.map.lookup_elem(&agg)
    }

    /// Drains every sample, as the LIFL agent does on its reporting period,
    /// returning the snapshot and clearing the map.
    pub fn drain(&self) -> Vec<(AggregatorId, MetricSample)> {
        let snapshot = self.map.snapshot();
        self.map.clear();
        snapshot
    }

    /// Number of aggregators with samples.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no samples have been recorded since the last drain.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_average() {
        let metrics = MetricsMap::new();
        let agg = AggregatorId::new(5);
        metrics.record_aggregation(agg, SimDuration::from_secs(2.0), SimTime::from_secs(1.0));
        metrics.record_aggregation(agg, SimDuration::from_secs(4.0), SimTime::from_secs(2.0));
        metrics.record_send(agg, SimTime::from_secs(3.0));
        let sample = metrics.sample(agg).unwrap();
        assert_eq!(sample.updates_aggregated, 2);
        assert_eq!(sample.updates_sent, 1);
        assert!((sample.avg_exec_time().as_secs() - 3.0).abs() < 1e-12);
        assert_eq!(sample.last_seen, SimTime::from_secs(3.0));
    }

    #[test]
    fn drain_clears() {
        let metrics = MetricsMap::new();
        metrics.record_send(AggregatorId::new(1), SimTime::ZERO);
        metrics.record_send(AggregatorId::new(2), SimTime::ZERO);
        let drained = metrics.drain();
        assert_eq!(drained.len(), 2);
        assert!(metrics.is_empty());
        assert_eq!(metrics.len(), 0);
    }

    #[test]
    fn empty_sample_average_is_zero() {
        assert_eq!(MetricSample::default().avg_exec_time(), SimDuration::ZERO);
    }
}
