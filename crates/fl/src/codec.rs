//! Model-update codecs: quantized / sparsified wire representations.
//!
//! LIFL's headline win is cutting the per-update *hand-off* cost; this module
//! attacks the remaining term, the payload bytes themselves, in the spirit of
//! implicitly/quantization-enhanced RL representations (iQRL, QeRL —
//! PAPERS.md). Three lossy representations are provided next to the lossless
//! [`CodecKind::Identity`]:
//!
//! * **Uniform8 / Uniform4** — stochastic uniform quantization with one `f32`
//!   scale per tensor. Stochastic rounding makes the quantizer *unbiased*
//!   (`E[decode(encode(x))] = x`), so cumulative FedAvg over many clients and
//!   rounds is not systematically dragged; the worst-case per-element error is
//!   one quantization step (`scale`), half a step in expectation.
//! * **TopK** — magnitude sparsification; only the largest-magnitude
//!   coordinates travel as `(index, value)` pairs.
//!
//! [`ErrorFeedback`] keeps a per-client residual (the part of each update the
//! codec dropped) and folds it into the client's next transmission, the
//! standard error-feedback construction that keeps long-run FedAvg convergent
//! even under aggressive compression.
//!
//! The wire form [`EncodedUpdate`] is a self-describing byte string (16-byte
//! header + payload) so it can be stored zero-copy in the `lifl-shmem` object
//! store and re-parsed by any aggregator without side-channel metadata. Its
//! size always equals [`CodecKind::encoded_bytes`] applied to the dense size,
//! keeping the simulator's cost accounting and the in-process runtime's real
//! byte counters consistent.
//!
//! The per-codec encode, decode and fused decode-fold inner loops all live in
//! [`crate::kernels`], which dispatches between an AVX2 arm and a bit-exact
//! scalar reference at runtime; this module owns the wire format, scale
//! derivation and buffer management around those kernels. There is exactly
//! one decode routine per codec — [`EncodedUpdate::decode_into`] and
//! [`EncodedView::decode_into`] both resolve to it.

use crate::kernels;
use crate::kernels::StochasticRng;
use crate::model::DenseModel;
use crate::update::Update;
use lifl_shmem::BufferPool;
use lifl_types::{ClientId, CodecKind, LiflError, Result, WIRE_HEADER_BYTES};
use std::collections::BTreeMap;

/// Codec tags used in byte 0 of the wire header.
const TAG_IDENTITY: u8 = 0;
const TAG_UNIFORM8: u8 = 1;
const TAG_UNIFORM4: u8 = 2;
const TAG_TOPK: u8 = 3;

/// Quantization levels on each side of zero for the uniform codecs.
const U8_LEVELS: f32 = 127.0;
const U4_LEVELS: f32 = 7.0;

/// A model update in its on-wire representation: a self-describing header
/// followed by the codec-specific payload.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedUpdate {
    codec: CodecKind,
    dim: u32,
    scale: f32,
    kept: u32,
    body: Vec<u8>,
}

impl EncodedUpdate {
    /// The codec that produced this update.
    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// Number of parameters of the dense model this encodes.
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// The per-tensor quantization scale (0 for `Identity` and `TopK`).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Payload bytes this update puts on the data plane. The 16-byte
    /// descriptor header travels the SKMSG control channel alongside the
    /// object key and weight, so it is excluded here — this always equals
    /// [`CodecKind::encoded_bytes`] of the dense size.
    pub fn wire_bytes(&self) -> u64 {
        self.body.len() as u64
    }

    /// Bytes the self-describing form occupies in shared memory (descriptor
    /// header + payload). The headerless dense representation of the
    /// pre-codec path is produced by `ObjectStore::put_f32`, not by this
    /// type, so every `EncodedUpdate` — `Identity` included — carries the
    /// header and round-trips through [`EncodedUpdate::from_bytes`].
    pub fn stored_bytes(&self) -> u64 {
        WIRE_HEADER_BYTES + self.body.len() as u64
    }

    /// Bytes of the dense `f32` representation of the same model.
    pub fn dense_bytes(&self) -> u64 {
        u64::from(self.dim) * 4
    }

    /// Serializes header + payload into one byte string for shared memory or
    /// the wire; [`EncodedUpdate::from_bytes`] is its exact inverse for every
    /// codec.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(WIRE_HEADER_BYTES as usize + self.body.len());
        let (tag, permille) = match self.codec {
            CodecKind::Identity => (TAG_IDENTITY, 0u16),
            CodecKind::Uniform8 => (TAG_UNIFORM8, 0),
            CodecKind::Uniform4 => (TAG_UNIFORM4, 0),
            CodecKind::TopK { permille } => (TAG_TOPK, permille),
        };
        out.push(tag);
        out.push(0);
        out.extend_from_slice(&permille.to_le_bytes());
        out.extend_from_slice(&self.dim.to_le_bytes());
        out.extend_from_slice(&self.scale.to_le_bytes());
        out.extend_from_slice(&self.kept.to_le_bytes());
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses a wire byte string produced by [`EncodedUpdate::to_bytes`] into
    /// an owned update (the body is copied). The zero-copy alternative is
    /// [`EncodedView::parse`], which borrows the payload in place.
    ///
    /// # Errors
    /// Returns [`LiflError::Codec`] on a truncated or malformed buffer.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        Ok(EncodedView::parse(bytes)?.to_update())
    }

    /// A zero-copy view over this update's payload, for in-place decode and
    /// fused decode-fold.
    pub fn view(&self) -> EncodedView<'_> {
        EncodedView {
            codec: self.codec,
            dim: self.dim,
            scale: self.scale,
            kept: self.kept,
            body: &self.body,
        }
    }

    /// Reconstructs the dense model this update encodes.
    pub fn decode(&self) -> DenseModel {
        self.view().decode()
    }

    /// Dequantizes this update into `out` without allocating; `out` becomes
    /// exactly what [`EncodedUpdate::decode`] would return.
    ///
    /// # Errors
    /// Returns [`LiflError::DimensionMismatch`] if `out.len() != self.dim()`.
    pub fn decode_into(&self, out: &mut [f32]) -> Result<()> {
        self.view().decode_into(out)
    }

    /// Consumes the update and returns its body buffer so it can be checked
    /// back into a [`BufferPool`] (see [`UpdateCodec::recycle`]).
    pub fn into_body(self) -> Vec<u8> {
        self.body
    }
}

/// A borrowed, zero-copy view of an encoded update: the parsed 16-byte
/// descriptor plus a reference to the payload bytes, typically straight out of
/// the shared-memory object store. All decode and fused decode-fold kernels
/// operate on views so interior aggregators never materialise an intermediate
/// `DenseModel` (or even copy the payload) on the Recv+Agg critical path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodedView<'a> {
    codec: CodecKind,
    dim: u32,
    scale: f32,
    kept: u32,
    body: &'a [u8],
}

impl<'a> EncodedView<'a> {
    /// Parses the self-describing wire form without copying the payload.
    ///
    /// # Errors
    /// Returns [`LiflError::Codec`] on a truncated or malformed buffer.
    pub fn parse(bytes: &'a [u8]) -> Result<Self> {
        let header = bytes
            .get(..WIRE_HEADER_BYTES as usize)
            .ok_or_else(|| LiflError::Codec("wire buffer shorter than header".to_string()))?;
        let permille = u16::from_le_bytes([header[2], header[3]]);
        let dim = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        let scale = f32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        let kept = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
        let codec = match header[0] {
            TAG_IDENTITY => CodecKind::Identity,
            TAG_UNIFORM8 => CodecKind::Uniform8,
            TAG_UNIFORM4 => CodecKind::Uniform4,
            TAG_TOPK => CodecKind::TopK { permille },
            other => return Err(LiflError::Codec(format!("unknown codec tag {other}"))),
        };
        let body = &bytes[WIRE_HEADER_BYTES as usize..];
        let expected = match codec {
            CodecKind::Identity => dim as usize * 4,
            CodecKind::Uniform8 => dim as usize,
            CodecKind::Uniform4 => (dim as usize).div_ceil(2),
            CodecKind::TopK { .. } => kept as usize * 8,
        };
        if body.len() != expected {
            return Err(LiflError::Codec(format!(
                "payload length {} does not match header (codec {codec}, dim {dim}, kept {kept})",
                body.len()
            )));
        }
        Ok(EncodedView {
            codec,
            dim,
            scale,
            kept,
            body,
        })
    }

    /// Wraps a headerless dense little-endian `f32` payload (the pre-codec
    /// `ObjectStore::put_f32` representation) as an `Identity` view, so dense
    /// and encoded payloads share one fused fold path.
    pub fn identity_over(payload: &'a [u8]) -> Self {
        let dim = (payload.len() / 4) as u32;
        EncodedView {
            codec: CodecKind::Identity,
            dim,
            scale: 0.0,
            kept: dim,
            body: &payload[..dim as usize * 4],
        }
    }

    /// The codec that produced this update.
    pub fn codec(&self) -> CodecKind {
        self.codec
    }

    /// Number of parameters of the dense model this encodes.
    pub fn dim(&self) -> usize {
        self.dim as usize
    }

    /// The per-tensor quantization scale (0 for `Identity` and `TopK`).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Copies the view into an owned [`EncodedUpdate`].
    pub fn to_update(&self) -> EncodedUpdate {
        EncodedUpdate {
            codec: self.codec,
            dim: self.dim,
            scale: self.scale,
            kept: self.kept,
            body: self.body.to_vec(),
        }
    }

    /// Reconstructs the dense model this view encodes (allocating).
    pub fn decode(&self) -> DenseModel {
        let mut out = vec![0.0f32; self.dim as usize];
        self.decode_into(&mut out)
            // lifl-lint: allow(panic) — `out` is sized to `dim` on the
            // previous line, the only failure `decode_into` has.
            .expect("freshly sized buffer matches dim");
        DenseModel::from_vec(out)
    }

    /// Dequantizes into `out` without allocating, bit-exactly reproducing
    /// [`EncodedView::decode`].
    ///
    /// # Errors
    /// Returns [`LiflError::DimensionMismatch`] if `out.len() != self.dim()`.
    pub fn decode_into(&self, out: &mut [f32]) -> Result<()> {
        if out.len() != self.dim as usize {
            return Err(LiflError::DimensionMismatch {
                expected: self.dim as usize,
                actual: out.len(),
            });
        }
        match self.codec {
            CodecKind::Identity => kernels::decode_dense_le(out, self.body),
            CodecKind::Uniform8 => kernels::decode_u8(out, self.body, self.scale),
            CodecKind::Uniform4 => kernels::decode_u4(out, self.body, self.scale),
            CodecKind::TopK { .. } => kernels::decode_topk(out, self.body),
        }
        Ok(())
    }

    /// Fused decode-fold: adds `weight * decode(self)` into `acc` in a single
    /// pass over the wire payload, with no intermediate buffer. `TopK` touches
    /// only its nonzero coordinates. For `Identity` this is bit-exact with
    /// decode-then-`axpy`; for the quantized codecs the dequantize and weight
    /// multiplies are fused (`level * (weight * scale)`), which differs from
    /// the two-step path by at most a few ulps — far inside one quantization
    /// step.
    ///
    /// # Errors
    /// Returns [`LiflError::DimensionMismatch`] if `acc.len() != self.dim()`.
    pub fn fold_into(&self, weight: f32, acc: &mut [f32]) -> Result<()> {
        if acc.len() != self.dim as usize {
            return Err(LiflError::DimensionMismatch {
                expected: self.dim as usize,
                actual: acc.len(),
            });
        }
        self.fold_range_into(weight, 0, acc);
        Ok(())
    }

    /// Fused decode-fold over the element range `[start, start + acc.len())`
    /// of the decoded update: the shard-local kernel behind
    /// `ShardedFedAvg`. The caller guarantees the range lies inside
    /// `0..self.dim()`; out-of-range tails simply fold nothing.
    pub fn fold_range_into(&self, weight: f32, start: usize, acc: &mut [f32]) {
        let dim = self.dim as usize;
        let len = acc.len().min(dim.saturating_sub(start));
        if len == 0 {
            return;
        }
        let acc = &mut acc[..len];
        match self.codec {
            CodecKind::Identity => {
                kernels::fold_dense_le(acc, &self.body[start * 4..(start + len) * 4], weight);
            }
            CodecKind::Uniform8 => {
                kernels::fold_u8(acc, &self.body[start..start + len], weight * self.scale);
            }
            CodecKind::Uniform4 => {
                kernels::fold_u4(acc, self.body, start, weight * self.scale);
            }
            CodecKind::TopK { .. } => {
                kernels::fold_topk(acc, self.body, start, start + len, weight);
            }
        }
    }

    /// Whether this is a `TopK` view whose indices are sorted ascending (the
    /// form [`UpdateCodec::encode`] produces). Sorted `TopK` payloads can be
    /// folded block-by-block with a resumable cursor
    /// ([`EncodedView::fold_topk_window`]) instead of rescanning the whole
    /// body per block.
    pub fn topk_indices_sorted(&self) -> bool {
        if !matches!(self.codec, CodecKind::TopK { .. }) {
            return false;
        }
        let mut previous = 0u32;
        for (i, pair) in self.body.chunks_exact(8).enumerate() {
            let index = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]);
            if i > 0 && index <= previous {
                return false;
            }
            previous = index;
        }
        true
    }

    /// Cursor-resumed `TopK` window fold for callers that walk blocks in
    /// ascending order over a sorted payload (see
    /// [`EncodedView::topk_indices_sorted`]): `cursor` is a pair offset that
    /// only ever advances, so a whole walk costs `O(kept + blocks)` instead
    /// of `O(kept × blocks)`. Folds exactly the pairs `fold_range_into`
    /// would, in the same order.
    pub fn fold_topk_window(&self, cursor: &mut usize, weight: f32, start: usize, acc: &mut [f32]) {
        let dim = self.dim as usize;
        let len = acc.len().min(dim.saturating_sub(start));
        let end = start + len;
        while let Some(pair) = self.body.get(*cursor * 8..*cursor * 8 + 8) {
            let index = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]) as usize;
            if index >= end {
                break;
            }
            if index >= start {
                let value = f32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]);
                acc[index - start] += weight * value;
            }
            *cursor += 1;
        }
    }
}

/// The encoder/decoder for one [`CodecKind`], owning the randomness stream the
/// stochastic rounding draws from (deterministic given the seed) and the
/// scratch-buffer pool its encode bodies are drawn from.
#[derive(Debug, Clone)]
pub struct UpdateCodec {
    kind: CodecKind,
    rng: StochasticRng,
    pool: BufferPool,
}

impl UpdateCodec {
    /// Creates a codec with a fixed default seed (deterministic streams).
    pub fn new(kind: CodecKind) -> Self {
        Self::with_seed(kind, 0xC0DEC)
    }

    /// Creates a codec whose stochastic rounding draws from `seed`.
    pub fn with_seed(kind: CodecKind, seed: u64) -> Self {
        UpdateCodec {
            kind,
            rng: StochasticRng::from_seed(seed),
            pool: BufferPool::new(),
        }
    }

    /// Shares `pool` as the scratch slab the encode bodies are drawn from.
    /// Retire encoded updates with [`UpdateCodec::recycle`] and steady-state
    /// encoding allocates nothing after warm-up.
    pub fn with_pool(mut self, pool: BufferPool) -> Self {
        self.pool = pool;
        self
    }

    /// The scratch-buffer pool this codec draws encode bodies from.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Checks a retired update's body buffer back into the pool so the next
    /// [`UpdateCodec::encode`] reuses it instead of allocating.
    pub fn recycle(&self, encoded: EncodedUpdate) {
        self.pool.checkin_bytes(encoded.into_body());
    }

    /// The configured codec kind.
    pub fn kind(&self) -> CodecKind {
        self.kind
    }

    /// Encodes a dense model into its wire representation.
    pub fn encode(&mut self, model: &DenseModel) -> EncodedUpdate {
        self.encode_slice(model.as_slice())
    }

    /// Encodes a raw parameter slice into its wire representation (the
    /// `DenseModel`-free entry point used by pooled scratch buffers). The
    /// body buffer is checked out of the codec's pool.
    pub fn encode_slice(&mut self, params: &[f32]) -> EncodedUpdate {
        let dim = params.len() as u32;
        match self.kind {
            CodecKind::Identity => {
                let mut body = self.pool.checkout_bytes(params.len() * 4);
                for v in params {
                    body.extend_from_slice(&v.to_le_bytes());
                }
                EncodedUpdate {
                    codec: self.kind,
                    dim,
                    scale: 0.0,
                    kept: dim,
                    body,
                }
            }
            CodecKind::Uniform8 => {
                let scale = tensor_scale(params, U8_LEVELS);
                let mut body = self.pool.checkout_bytes(params.len());
                kernels::encode_u8(params, scale, U8_LEVELS, &mut self.rng, &mut body);
                EncodedUpdate {
                    codec: self.kind,
                    dim,
                    scale,
                    kept: dim,
                    body,
                }
            }
            CodecKind::Uniform4 => {
                let scale = tensor_scale(params, U4_LEVELS);
                let mut body = self.pool.checkout_bytes(params.len().div_ceil(2));
                kernels::encode_u4(params, scale, U4_LEVELS, &mut self.rng, &mut body);
                EncodedUpdate {
                    codec: self.kind,
                    dim,
                    scale,
                    kept: dim,
                    body,
                }
            }
            CodecKind::TopK { permille } => {
                let kept = CodecKind::top_k_kept(params.len() as u64, permille) as usize;
                // The index scratch is pooled like the body: steady-state
                // top-k encoding touches the allocator zero times.
                let mut order = self.pool.checkout_u32(params.len());
                order.extend(0..params.len() as u32);
                let by_magnitude_desc = |a: &u32, b: &u32| {
                    params[*b as usize]
                        .abs()
                        .partial_cmp(&params[*a as usize].abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(b))
                };
                // Linear-time selection of the top-k set; only the kept
                // prefix needs ordering (and only by index, for the wire).
                if kept < order.len() {
                    order.select_nth_unstable_by(kept, by_magnitude_desc);
                    order.truncate(kept);
                }
                order.sort_unstable();
                let mut body = self.pool.checkout_bytes(order.len() * 8);
                for index in &order {
                    body.extend_from_slice(&index.to_le_bytes());
                    body.extend_from_slice(&params[*index as usize].to_le_bytes());
                }
                let kept = order.len() as u32;
                self.pool.checkin_u32(order);
                EncodedUpdate {
                    codec: self.kind,
                    dim,
                    scale: 0.0,
                    kept,
                    body,
                }
            }
        }
    }

    /// Convenience: encode then immediately decode (what an aggregator sees).
    pub fn roundtrip(&mut self, model: &DenseModel) -> DenseModel {
        self.encode(model).decode()
    }
}

/// Per-tensor scale so the largest magnitude maps to the outermost level.
fn tensor_scale(params: &[f32], levels: f32) -> f32 {
    let max_abs = kernels::max_abs_finite(params);
    if max_abs == 0.0 {
        0.0
    } else {
        max_abs / levels
    }
}

/// Client-side error feedback: each client remembers the residual its codec
/// dropped last round and adds it back before encoding the next update, so the
/// *cumulative* FedAvg signal stays unbiased even under aggressive
/// compression.
#[derive(Debug, Clone)]
pub struct ErrorFeedback {
    codec: UpdateCodec,
    residuals: BTreeMap<ClientId, DenseModel>,
}

impl ErrorFeedback {
    /// Creates an error-feedback encoder around `codec`.
    pub fn new(codec: UpdateCodec) -> Self {
        ErrorFeedback {
            codec,
            residuals: BTreeMap::new(),
        }
    }

    /// The codec kind in use.
    pub fn kind(&self) -> CodecKind {
        self.codec.kind()
    }

    /// Encodes `model` for `client`, compensating with the client's stored
    /// residual and retaining the new residual for the next round.
    ///
    /// The compensation scratch is drawn from the codec's [`BufferPool`] and
    /// the residual is updated in place via the fused decode-fold kernel, so
    /// steady-state encoding performs no model-sized heap allocation.
    ///
    /// # Errors
    /// Returns [`LiflError::DimensionMismatch`] if the client's model changes
    /// dimension between rounds.
    pub fn encode(&mut self, client: ClientId, model: &DenseModel) -> Result<EncodedUpdate> {
        let dim = model.dim();
        if let Some(residual) = self.residuals.get(&client) {
            if residual.dim() != dim {
                return Err(LiflError::DimensionMismatch {
                    expected: dim,
                    actual: residual.dim(),
                });
            }
        }
        let pool = self.codec.pool().clone();
        let mut compensated = pool.checkout_f32(dim);
        compensated.copy_from_slice(model.as_slice());
        if let Some(residual) = self.residuals.get(&client) {
            for (c, r) in compensated.iter_mut().zip(residual.as_slice()) {
                *c += r;
            }
        }
        let encoded = self.codec.encode_slice(&compensated);
        if self.codec.kind().is_lossless() {
            self.residuals.remove(&client);
        } else {
            // residual = compensated - decode(encoded), computed in place.
            let residual = self.residuals.entry(client).or_default();
            residual.copy_from_slice(&compensated);
            encoded.view().fold_into(-1.0, residual.as_mut_slice())?;
        }
        pool.checkin_f32(compensated);
        Ok(encoded)
    }

    /// Checks a retired update's body back into the shared scratch pool.
    pub fn recycle(&self, encoded: EncodedUpdate) {
        self.codec.recycle(encoded);
    }

    /// Wraps `model` in the codec-transparent [`Update`] envelope the data
    /// plane carries: `Dense` under a lossless codec (bit-exact, no residual
    /// bookkeeping), `Encoded` otherwise, with this client's error-feedback
    /// compensation applied. If the stored residual no longer matches the
    /// model's dimension (the model changed shape mid-run), every residual is
    /// dropped and the update is re-encoded compensation-free.
    pub fn encode_update(&mut self, client: ClientId, model: DenseModel, samples: u64) -> Update {
        if self.kind().is_lossless() {
            return Update::dense(client, model, samples);
        }
        let encoded = match self.encode(client, &model) {
            Ok(encoded) => encoded,
            Err(_) => {
                self.reset();
                self.encode(client, &model)
                    // lifl-lint: allow(panic) — encode only fails on a
                    // residual-dimension mismatch, and `reset()` above just
                    // cleared every residual.
                    .expect("encode without a residual is infallible")
            }
        };
        Update::encoded(client, encoded, samples)
    }

    /// Returns a retired envelope's encode-body buffer to the shared scratch
    /// pool (a no-op for non-encoded variants).
    pub fn recycle_update(&self, update: Update) {
        if let Update::Encoded { update, .. } = update {
            self.recycle(update);
        }
    }

    /// The residual currently stored for `client`, if any.
    pub fn residual(&self, client: ClientId) -> Option<&DenseModel> {
        self.residuals.get(&client)
    }

    /// Drops every stored residual (e.g. when the model dimension changes).
    pub fn reset(&mut self) {
        self.residuals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(values: &[f32]) -> DenseModel {
        DenseModel::from_vec(values.to_vec())
    }

    #[test]
    fn fold_range_beyond_dim_folds_nothing() {
        let m = model(&[1.0, 2.0, 3.0]);
        for kind in CodecKind::ablation_set() {
            let mut codec = UpdateCodec::new(kind);
            let encoded = codec.encode(&m);
            let mut acc = [5.0f32; 4];
            // Entirely past the dimension: no-op, no panic.
            encoded.view().fold_range_into(2.0, 7, &mut acc);
            assert_eq!(acc, [5.0; 4], "{kind}");
            // Straddling the end folds only the in-range tail.
            encoded.view().fold_range_into(1.0, 2, &mut acc);
            let decoded = encoded.decode();
            assert!(
                (acc[0] - (5.0 + decoded.as_slice()[2])).abs() < 1e-6,
                "{kind}"
            );
            assert_eq!(&acc[1..], [5.0; 3], "{kind}");
        }
    }

    #[test]
    fn identity_roundtrip_is_bit_exact() {
        let m = model(&[1.0, -2.5, 3.75, f32::MIN_POSITIVE]);
        let mut codec = UpdateCodec::new(CodecKind::Identity);
        let encoded = codec.encode(&m);
        // The data plane accounts payload bytes only; the stored form adds
        // the 16-byte descriptor so from_bytes can re-parse it.
        assert_eq!(encoded.wire_bytes(), 16);
        assert_eq!(encoded.to_bytes().len(), 32);
        let parsed = EncodedUpdate::from_bytes(&encoded.to_bytes()).unwrap();
        assert_eq!(parsed, encoded);
        let decoded = encoded.decode();
        for (a, b) in m.as_slice().iter().zip(decoded.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn wire_bytes_match_codec_kind_accounting() {
        let dims = [1usize, 2, 7, 64, 1001];
        for kind in CodecKind::ablation_set() {
            let mut codec = UpdateCodec::new(kind);
            for dim in dims {
                let m = DenseModel::from_vec((0..dim).map(|i| i as f32 * 0.3 - 1.0).collect());
                let encoded = codec.encode(&m);
                assert_eq!(
                    encoded.wire_bytes(),
                    kind.encoded_bytes((dim * 4) as u64),
                    "codec {kind} dim {dim}"
                );
                assert_eq!(encoded.to_bytes().len() as u64, encoded.stored_bytes());
            }
        }
    }

    #[test]
    fn from_bytes_roundtrips_every_codec() {
        for kind in [
            CodecKind::Identity,
            CodecKind::Uniform8,
            CodecKind::Uniform4,
            CodecKind::TopK { permille: 300 },
        ] {
            let mut codec = UpdateCodec::new(kind);
            let m = DenseModel::from_vec((0..33).map(|i| (i as f32 - 16.0) * 0.21).collect());
            let encoded = codec.encode(&m);
            let parsed = EncodedUpdate::from_bytes(&encoded.to_bytes()).unwrap();
            assert_eq!(parsed, encoded);
            assert_eq!(parsed.decode(), encoded.decode());
        }
    }

    #[test]
    fn malformed_wire_buffers_are_rejected() {
        assert!(EncodedUpdate::from_bytes(&[1, 2, 3]).is_err());
        let mut codec = UpdateCodec::new(CodecKind::Uniform8);
        let mut bytes = codec.encode(&model(&[1.0, 2.0])).to_bytes();
        bytes[0] = 99; // unknown tag
        assert!(EncodedUpdate::from_bytes(&bytes).is_err());
        bytes[0] = 1;
        bytes.pop(); // truncated payload
        assert!(EncodedUpdate::from_bytes(&bytes).is_err());
    }

    #[test]
    fn uniform_error_is_bounded_by_one_step() {
        let values: Vec<f32> = (0..257)
            .map(|i| ((i * 37) % 101) as f32 * 0.13 - 6.5)
            .collect();
        let m = DenseModel::from_vec(values);
        for (kind, levels) in [
            (CodecKind::Uniform8, U8_LEVELS),
            (CodecKind::Uniform4, U4_LEVELS),
        ] {
            let mut codec = UpdateCodec::new(kind);
            let encoded = codec.encode(&m);
            let scale = encoded.scale();
            assert!((scale - 6.5 / levels).abs() < 0.2, "scale {scale}");
            for (x, y) in m.as_slice().iter().zip(encoded.decode().as_slice()) {
                assert!(
                    (x - y).abs() <= scale + 1e-6,
                    "{kind}: |{x} - {y}| > step {scale}"
                );
            }
        }
    }

    #[test]
    fn top_k_keeps_largest_magnitudes() {
        let m = model(&[0.1, -9.0, 0.2, 7.0, -0.3, 0.05, 4.0, 0.0, 0.0, 0.0]);
        let mut codec = UpdateCodec::new(CodecKind::TopK { permille: 300 });
        let decoded = codec.encode(&m).decode();
        let slice = decoded.as_slice();
        assert_eq!(slice[1], -9.0);
        assert_eq!(slice[3], 7.0);
        assert_eq!(slice[6], 4.0);
        assert_eq!(slice.iter().filter(|v| **v != 0.0).count(), 3);
    }

    #[test]
    fn zero_tensor_encodes_losslessly_everywhere() {
        for kind in CodecKind::ablation_set() {
            let mut codec = UpdateCodec::new(kind);
            let decoded = codec.roundtrip(&DenseModel::zeros(9));
            assert_eq!(decoded.as_slice(), &[0.0f32; 9]);
        }
    }

    #[test]
    fn error_feedback_residual_tracks_dropped_mass() {
        let client = ClientId::new(7);
        let m = model(&[1.0, -0.4, 0.03, 0.8]);
        let mut feedback = ErrorFeedback::new(UpdateCodec::new(CodecKind::Uniform4));
        let encoded = feedback.encode(client, &m).unwrap();
        let residual = feedback.residual(client).unwrap().clone();
        // residual = compensated - decoded, so decoded + residual == input.
        let mut reconstructed = encoded.decode();
        reconstructed.axpy(1.0, &residual).unwrap();
        for (a, b) in m.as_slice().iter().zip(reconstructed.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
        // Identity stores no residual.
        let mut lossless = ErrorFeedback::new(UpdateCodec::new(CodecKind::Identity));
        lossless.encode(client, &m).unwrap();
        assert!(lossless.residual(client).is_none());
        lossless.reset();
    }

    #[test]
    fn error_feedback_time_average_converges_to_input() {
        // A client repeatedly sends the same update through an aggressive
        // codec; with error feedback the *average* decoded signal converges to
        // the true update even though each round is coarsely quantized.
        let client = ClientId::new(1);
        let m = model(&[0.31, -0.27, 0.011, 0.44, -0.09]);
        let mut feedback = ErrorFeedback::new(UpdateCodec::new(CodecKind::Uniform4));
        let rounds = 400;
        let mut sum = DenseModel::zeros(m.dim());
        for _ in 0..rounds {
            let decoded = feedback.encode(client, &m).unwrap().decode();
            sum.axpy(1.0, &decoded).unwrap();
        }
        sum.scale(1.0 / rounds as f32);
        for (a, b) in m.as_slice().iter().zip(sum.as_slice()) {
            assert!((a - b).abs() < 0.02, "time-average {b} far from {a}");
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::aggregate::{fedavg, ModelUpdate};
    use proptest::prelude::*;

    fn arbitrary_params() -> impl Strategy<Value = Vec<f32>> {
        proptest::collection::vec(-8.0f32..8.0, 1..48)
    }

    proptest! {
        /// `decode_into` (and the zero-copy view parse) reproduce `decode`
        /// bit-exactly for every codec, and the wire roundtrip preserves it.
        #[test]
        fn decode_into_is_bit_exact_with_decode(params in arbitrary_params(), seed in 0u64..500) {
            for kind in [
                CodecKind::Identity,
                CodecKind::Uniform8,
                CodecKind::Uniform4,
                CodecKind::TopK { permille: 400 },
            ] {
                let mut codec = UpdateCodec::with_seed(kind, seed);
                let encoded = codec.encode(&DenseModel::from_vec(params.clone()));
                let wire = encoded.to_bytes();
                let view = EncodedView::parse(&wire).unwrap();
                prop_assert_eq!(view.to_update(), encoded.clone());
                let mut out = vec![7.7f32; params.len()];
                encoded.decode_into(&mut out).unwrap();
                for (a, b) in out.iter().zip(encoded.decode().as_slice()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(), "{}: {} vs {}", kind, a, b);
                }
                let mut short = vec![0.0f32; params.len() + 1];
                prop_assert!(encoded.decode_into(&mut short).is_err());
            }
        }

        /// The fused `fold_encoded` equals decode-then-fold bit-exactly for
        /// `Identity` and within one quantization step for `Uniform8/4`
        /// (`TopK` stores raw values, so it is bit-exact too).
        #[test]
        fn fused_fold_matches_decode_then_fold(
            params in arbitrary_params(),
            samples in 1u64..40,
            seed in 0u64..500,
        ) {
            use crate::aggregate::CumulativeFedAvg;
            for kind in [
                CodecKind::Identity,
                CodecKind::Uniform8,
                CodecKind::Uniform4,
                CodecKind::TopK { permille: 400 },
            ] {
                let mut codec = UpdateCodec::with_seed(kind, seed);
                let encoded = codec.encode(&DenseModel::from_vec(params.clone()));
                let mut two_step = CumulativeFedAvg::new(params.len());
                two_step
                    .fold(&ModelUpdate::intermediate(encoded.decode(), samples))
                    .unwrap();
                let mut fused = CumulativeFedAvg::new(params.len());
                fused.fold_encoded(&encoded, samples).unwrap();
                let expected = two_step.finalize().unwrap();
                let got = fused.finalize().unwrap();
                prop_assert_eq!(got.samples, expected.samples);
                let step = encoded.scale();
                for (a, b) in got.model.as_slice().iter().zip(expected.model.as_slice()) {
                    match kind {
                        CodecKind::Identity | CodecKind::TopK { .. } => {
                            prop_assert_eq!(a.to_bits(), b.to_bits(),
                                "{}: fused {} vs two-step {}", kind, a, b);
                        }
                        _ => prop_assert!((a - b).abs() <= step.max(1e-6),
                            "{}: fused {} vs two-step {} beyond one step {}", kind, a, b, step),
                    }
                }
            }
        }

        /// Stochastic uniform quantization never errs by more than one step
        /// per element (and half a step in expectation; the hard bound is what
        /// holds sample-wise).
        #[test]
        fn quantize_dequantize_error_bounded_by_step(params in arbitrary_params(), seed in 0u64..1000) {
            for (kind, levels) in [(CodecKind::Uniform8, 127.0f32), (CodecKind::Uniform4, 7.0f32)] {
                let mut codec = UpdateCodec::with_seed(kind, seed);
                let m = DenseModel::from_vec(params.clone());
                let encoded = codec.encode(&m);
                let step = encoded.scale();
                let max_abs = params.iter().fold(0.0f32, |a, v| a.max(v.abs()));
                prop_assert!((step - max_abs / levels).abs() <= max_abs * 1e-5 + 1e-12);
                for (x, y) in m.as_slice().iter().zip(encoded.decode().as_slice()) {
                    prop_assert!((x - y).abs() <= step * 1.0001 + 1e-6,
                        "{}: |{} - {}| exceeds step {}", kind, x, y, step);
                }
            }
        }

        /// Error-feedback FedAvg over many rounds converges to the
        /// unquantized mean: the running average of the decoded aggregate
        /// approaches the true FedAvg of the client updates.
        #[test]
        fn error_feedback_fedavg_converges_to_unquantized_mean(
            updates in proptest::collection::vec((arbitrary_params(), 1u64..20), 2..5),
            seed in 0u64..200,
        ) {
            let dim = updates[0].0.len();
            let clients: Vec<ModelUpdate> = updates
                .iter()
                .enumerate()
                .map(|(i, (params, samples))| {
                    let mut p = params.clone();
                    p.resize(dim, 0.0);
                    ModelUpdate::from_client(ClientId::new(i as u64), DenseModel::from_vec(p), *samples)
                })
                .collect();
            let exact = fedavg(&clients).unwrap();
            let mut feedback = ErrorFeedback::new(UpdateCodec::with_seed(CodecKind::Uniform4, seed));
            let rounds = 150usize;
            let mut mean = DenseModel::zeros(dim);
            for _ in 0..rounds {
                let round: Vec<ModelUpdate> = clients
                    .iter()
                    .map(|u| {
                        let decoded = feedback
                            .encode(u.client.unwrap(), &u.model)
                            .unwrap()
                            .decode();
                        ModelUpdate::from_client(u.client.unwrap(), decoded, u.samples)
                    })
                    .collect();
                mean.axpy(1.0 / rounds as f32, &fedavg(&round).unwrap().model).unwrap();
            }
            let max_abs = exact.model.as_slice().iter().fold(1.0f32, |a, v| a.max(v.abs()));
            for (a, b) in exact.model.as_slice().iter().zip(mean.as_slice()) {
                prop_assert!((a - b).abs() <= 0.08 * max_abs + 0.05,
                    "round-averaged {} drifted from exact {}", b, a);
            }
        }

        /// Hierarchical aggregation over Identity-encoded updates is bit-exact
        /// with the same hierarchy over the raw updates, and both match flat
        /// aggregation within float tolerance.
        #[test]
        fn identity_hierarchy_is_bit_exact(
            updates in proptest::collection::vec((proptest::collection::vec(-10.0f32..10.0, 4..=4), 1u64..30), 4..10),
            split in 1usize..9,
        ) {
            let raw: Vec<ModelUpdate> = updates
                .iter()
                .enumerate()
                .map(|(i, (p, s))| ModelUpdate::from_client(ClientId::new(i as u64), DenseModel::from_vec(p.clone()), *s))
                .collect();
            let mut codec = UpdateCodec::new(CodecKind::Identity);
            let encoded: Vec<ModelUpdate> = raw
                .iter()
                .map(|u| ModelUpdate {
                    client: u.client,
                    model: codec.encode(&u.model).decode(),
                    samples: u.samples,
                })
                .collect();
            let split = split.min(raw.len() - 1).max(1);
            let top_raw = fedavg(&[
                fedavg(&raw[..split]).unwrap(),
                fedavg(&raw[split..]).unwrap(),
            ]).unwrap();
            let top_encoded = fedavg(&[
                fedavg(&encoded[..split]).unwrap(),
                fedavg(&encoded[split..]).unwrap(),
            ]).unwrap();
            prop_assert_eq!(top_raw.samples, top_encoded.samples);
            for (a, b) in top_raw.model.as_slice().iter().zip(top_encoded.model.as_slice()) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "identity hierarchy not bit-exact");
            }
            let flat = fedavg(&raw).unwrap();
            for (a, b) in flat.model.as_slice().iter().zip(top_encoded.model.as_slice()) {
                prop_assert!((a - b).abs() < 1e-2);
            }
        }
    }
}
