//! A deterministic discrete-event queue.

use lifl_types::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so that the earliest time pops first,
        // breaking ties by insertion order (FIFO) for determinism.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timed events with deterministic FIFO tie-breaking.
///
/// Determinism matters because the experiment harness must produce identical
/// tables on every run for a fixed seed.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `event` at `time`. Events scheduled in the past are clamped
    /// to the current simulation time rather than rewinding the clock.
    pub fn push(&mut self, time: SimTime, event: E) {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Pops the earliest event, advancing the simulated clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Time of the earliest pending event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The current simulated time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("now", &self.now)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), 'c');
        q.push(SimTime::from_secs(1.0), 'a');
        q.push(SimTime::from_secs(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn fifo_tie_break() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime::from_secs(5.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_and_clamps_past_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10.0), "x");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_secs(), 10.0);
        assert_eq!(q.now().as_secs(), 10.0);
        // An event scheduled "in the past" is delivered now, never before.
        q.push(SimTime::from_secs(1.0), "past");
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2.as_secs(), 10.0);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_secs(2.0), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time().unwrap().as_secs(), 2.0);
    }
}
