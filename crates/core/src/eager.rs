//! Eager versus lazy aggregation timing (Fig. 1, §5.4, Appendix G).
//!
//! Given the times at which a single aggregator's inputs become available and
//! the per-update aggregation time, [`completion_time`] computes when the
//! aggregator produces its output under each policy:
//!
//! * **Eager**: Recv and Agg overlap — each update is aggregated as soon as it
//!   arrives (and the aggregator is free), so arrival gaps are hidden.
//! * **Lazy**: all `n` updates are queued first, then aggregated in one batch.

use lifl_types::{AggregationTiming, SimDuration, SimTime};

/// When an aggregator finishes aggregating a set of inputs.
///
/// `ready_at` is when the aggregator instance itself can start working
/// (cold-start or reuse time); `arrivals` are the input-availability times;
/// `per_update` is the aggregation compute per input.
pub fn completion_time(
    timing: AggregationTiming,
    ready_at: SimTime,
    arrivals: &[SimTime],
    per_update: SimDuration,
) -> SimTime {
    if arrivals.is_empty() {
        return ready_at;
    }
    let mut sorted: Vec<SimTime> = arrivals.to_vec();
    sorted.sort();
    match timing {
        AggregationTiming::Eager => {
            let mut done = ready_at;
            for arrival in sorted {
                done = done.max(arrival) + per_update;
            }
            done
        }
        AggregationTiming::Lazy => match sorted.last() {
            Some(&last) => ready_at.max(last) + per_update.scaled(sorted.len() as f64),
            None => ready_at,
        },
    }
}

/// The total busy CPU time the aggregator spends, identical under both
/// policies (eager changes *when* work happens, not *how much*).
pub fn busy_time(arrivals: &[SimTime], per_update: SimDuration) -> SimDuration {
    per_update.scaled(arrivals.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn eager_hides_arrival_gaps() {
        let arrivals = vec![t(0.0), t(10.0), t(20.0)];
        let per = SimDuration::from_secs(2.0);
        let eager = completion_time(AggregationTiming::Eager, t(0.0), &arrivals, per);
        let lazy = completion_time(AggregationTiming::Lazy, t(0.0), &arrivals, per);
        // Eager: each update is aggregated within its gap, so completion is
        // last arrival + one aggregation.
        assert_eq!(eager.as_secs(), 22.0);
        // Lazy: last arrival + 3 aggregations.
        assert_eq!(lazy.as_secs(), 26.0);
        assert!(eager < lazy);
    }

    #[test]
    fn eager_equals_lazy_for_simultaneous_arrivals() {
        let arrivals = vec![t(5.0); 4];
        let per = SimDuration::from_secs(1.0);
        let eager = completion_time(AggregationTiming::Eager, t(0.0), &arrivals, per);
        let lazy = completion_time(AggregationTiming::Lazy, t(0.0), &arrivals, per);
        assert_eq!(eager, lazy);
        assert_eq!(eager.as_secs(), 9.0);
    }

    #[test]
    fn ready_time_delays_start() {
        let arrivals = vec![t(1.0)];
        let per = SimDuration::from_secs(2.0);
        let done = completion_time(AggregationTiming::Eager, t(10.0), &arrivals, per);
        assert_eq!(done.as_secs(), 12.0);
    }

    #[test]
    fn empty_arrivals_finish_immediately() {
        assert_eq!(
            completion_time(
                AggregationTiming::Eager,
                t(3.0),
                &[],
                SimDuration::from_secs(1.0)
            ),
            t(3.0)
        );
        assert_eq!(
            busy_time(&[], SimDuration::from_secs(1.0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn busy_time_is_policy_independent() {
        let arrivals = vec![t(0.0), t(1.0), t(2.0)];
        assert_eq!(
            busy_time(&arrivals, SimDuration::from_secs(2.0)).as_secs(),
            6.0
        );
    }

    #[test]
    fn eager_never_slower_than_lazy() {
        // Property over a grid of arrival patterns.
        for gap in [0.0, 0.5, 1.0, 3.0, 10.0] {
            let arrivals: Vec<SimTime> = (0..6).map(|i| t(i as f64 * gap)).collect();
            let per = SimDuration::from_secs(1.5);
            let eager = completion_time(AggregationTiming::Eager, t(0.0), &arrivals, per);
            let lazy = completion_time(AggregationTiming::Lazy, t(0.0), &arrivals, per);
            assert!(eager <= lazy, "gap {gap}");
        }
    }
}
