//! The streaming-admission tier: property tests over the bounded ingress
//! path — conservation of offers under random arrival mixes, monotone
//! backpressure as queues fill, and churn-safe draining that never drops or
//! double-folds a survivor. The whole suite re-runs on the scalar kernel arm
//! via the `test-scalar` CI step (`LIFL_FORCE_SCALAR=1`).

use lifl_core::session::{SessionBuilder, Update};
use lifl_fl::aggregate::{fedavg, ModelUpdate};
use lifl_fl::DenseModel;
use lifl_types::{AdmissionConfig, AdmissionOutcome, ClientId, Topology};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A deterministic dense update for `client`, weighted `client + 1` samples.
fn update(client: u64, dim: usize) -> ModelUpdate {
    let values: Vec<f32> = (0..dim)
        .map(|d| ((client as usize * dim + d * 7) % 101) as f32 * 0.03 - 1.5)
        .collect();
    ModelUpdate::from_client(
        ClientId::new(client),
        DenseModel::from_vec(values),
        client + 1,
    )
}

proptest! {
    /// Conservation: however many updates are offered, in whatever order,
    /// every one is accounted for exactly once — admitted into the round,
    /// parked in a queue, or rejected — and the session's own counters agree
    /// with the caller's tally.
    #[test]
    fn offers_are_conserved_under_random_arrivals(
        leaves in 1usize..=4,
        fan in 1usize..=3,
        slots in 1usize..=3,
        offered in 0u64..=40,
    ) {
        let mut session = SessionBuilder::new()
            .topology(Topology::two_level(leaves, fan))
            .admission(AdmissionConfig::bounded(slots, 1 << 20))
            .build()
            .unwrap();
        let capacity = (leaves * fan) as u64;
        let (mut admitted, mut queued, mut rejected) = (0u64, 0u64, 0u64);
        for client in 0..offered {
            match session.try_ingest(Update::Dense(update(client, 8))).unwrap() {
                AdmissionOutcome::Admitted => admitted += 1,
                AdmissionOutcome::Queued { .. } => queued += 1,
                AdmissionOutcome::Rejected { .. } => rejected += 1,
            }
        }
        prop_assert_eq!(admitted + queued + rejected, offered);
        prop_assert_eq!(admitted, offered.min(capacity));
        prop_assert_eq!(session.pending_updates(), admitted);
        prop_assert_eq!(session.queued_updates() as u64, queued);
        let stats = session.admission_stats();
        prop_assert_eq!(stats.queued, queued);
        prop_assert_eq!(stats.rejected, rejected);
        // The parked backlog never exceeds its configured slot budget.
        prop_assert!(session.queued_updates() <= leaves * slots);
    }

    /// Monotone backpressure: with uniform payloads the outcome sequence
    /// only ever escalates — a block of `Admitted`, then `Queued`, then
    /// `Rejected`; it never relaxes while nothing drains. Each leaf queue's
    /// reported depth climbs by exactly one per offer it absorbs.
    #[test]
    fn backpressure_is_monotone_in_queue_depth(
        leaves in 1usize..=4,
        fan in 1usize..=3,
        slots in 1usize..=4,
        extra in 0usize..=12,
    ) {
        let mut session = SessionBuilder::new()
            .topology(Topology::two_level(leaves, fan))
            .admission(AdmissionConfig::bounded(slots, 1 << 20))
            .build()
            .unwrap();
        let capacity = leaves * fan;
        let offered = capacity + leaves * slots + extra;
        let mut outcomes = Vec::with_capacity(offered);
        let mut depths = Vec::new();
        for client in 0..offered as u64 {
            let outcome = session.try_ingest(Update::Dense(update(client, 8))).unwrap();
            if let AdmissionOutcome::Queued { depth } = outcome {
                depths.push(depth);
            }
            outcomes.push(outcome);
        }
        // Severity never decreases: Admitted(0) -> Queued(1) -> Rejected(2).
        let severity = |o: &AdmissionOutcome| match o {
            AdmissionOutcome::Admitted => 0,
            AdmissionOutcome::Queued { .. } => 1,
            AdmissionOutcome::Rejected { .. } => 2,
        };
        for pair in outcomes.windows(2) {
            prop_assert!(
                severity(&pair[0]) <= severity(&pair[1]),
                "backpressure relaxed: {:?} after {:?}",
                pair[1],
                pair[0]
            );
        }
        // Queued offers round-robin the leaf queues: the i-th parked offer
        // lands on leaf i % leaves at depth i / leaves + 1.
        for (i, depth) in depths.iter().enumerate() {
            prop_assert_eq!(*depth, i / leaves + 1);
        }
        prop_assert_eq!(depths.len(), leaves * slots);
    }

    /// Churn-safe draining: departing any subset of clients mid-round never
    /// drops a survivor, never folds anyone twice, and refills reclaimed
    /// slots from the backlog — the driven aggregate is exactly the FedAvg
    /// of the final roster.
    #[test]
    fn churn_never_drops_or_double_folds_a_survivor(
        departures in proptest::collection::vec(0u64..10, 0..=10),
    ) {
        const CAPACITY: usize = 6;
        const OFFERED: u64 = 10;
        let departed: BTreeSet<u64> = departures.into_iter().collect();
        let mut session = SessionBuilder::new()
            .topology(Topology::two_level(3, 2))
            .admission(AdmissionConfig::bounded(4, 1 << 20).with_quorum(1))
            .build()
            .unwrap();
        for client in 0..OFFERED {
            let outcome = session.try_ingest(Update::Dense(update(client, 8))).unwrap();
            prop_assert_eq!(
                outcome.is_admitted(),
                client < CAPACITY as u64,
                "first {} offers fill the round, the rest park",
                CAPACITY
            );
        }
        for client in &departed {
            session.depart_client(ClientId::new(*client));
        }
        let roster: Vec<ClientId> = session
            .round_clients()
            .into_iter()
            .flatten()
            .collect();
        // No departed client survives, and nobody is folded twice.
        let unique: BTreeSet<ClientId> = roster.iter().copied().collect();
        prop_assert_eq!(unique.len(), roster.len(), "duplicate fold: {:?}", roster);
        for client in &roster {
            prop_assert!(
                !departed.contains(&client.index()),
                "departed client {:?} still in the round",
                client
            );
        }
        // Every live client is accounted for: the round holds as many as it
        // can, the backlog parks the rest.
        let live = OFFERED as usize - departed.len();
        prop_assert_eq!(roster.len(), live.min(CAPACITY));
        prop_assert_eq!(session.queued_updates(), live.saturating_sub(CAPACITY));
        if roster.is_empty() {
            // Everyone left: the quorum of one is unmet and the round says so.
            prop_assert!(session.drive().is_err());
            return Ok(());
        }
        let expected: Vec<ModelUpdate> =
            roster.iter().map(|c| update(c.index(), 8)).collect();
        let flat = fedavg(&expected).unwrap();
        let report = session.drive().unwrap();
        prop_assert_eq!(report.update.samples, flat.samples);
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(flat.model.as_slice())
        {
            prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
        }
    }
}
