//! Fig. 9: time-to-accuracy workload (small round count for benchmarking).
use criterion::{criterion_group, criterion_main, Criterion};
use lifl_experiments::fig9_fig10;
use lifl_types::ModelKind;

fn bench(c: &mut Criterion) {
    let comparison = fig9_fig10::run_workload(ModelKind::ResNet18, 5, 30.0);
    println!("{}", fig9_fig10::format(&comparison));
    let mut group = c.benchmark_group("fig9_tta");
    group.sample_size(10);
    group.bench_function("resnet18_5rounds", |b| {
        b.iter(|| fig9_fig10::run_workload(ModelKind::ResNet18, 2, 30.0))
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
