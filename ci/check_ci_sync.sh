#!/bin/sh
# CI guard: `just ci` and the CI workflow must run the same commands.
# Collects the body lines of every recipe the justfile's `ci` recipe depends
# on, collects every `run:` command from .github/workflows/ci.yml, drops the
# toolchain bootstrap lines (rustup is CI-only) and diffs the two sets —
# drift in either direction fails.
set -eu

cd "$(dirname "$0")/.."

deps=$(sed -n 's/^ci: //p' justfile)
if [ -z "$deps" ]; then
    echo "ci-sync: no 'ci:' recipe found in justfile" >&2
    exit 1
fi

just_cmds=$(mktemp)
yml_cmds=$(mktemp)
trap 'rm -f "$just_cmds" "$yml_cmds"' EXIT

# Recipe bodies: indented, non-comment lines under each dependency's header.
for recipe in $deps; do
    awk -v recipe="$recipe" '
        $0 ~ "^" recipe ":" { body = 1; next }
        body && /^[^ \t]/ { body = 0 }
        body && /^[ \t]+[^#[:space:]]/ {
            line = $0
            sub(/^[ \t]+/, "", line)
            print line
        }
    ' justfile
done | grep -v '^rustup' | sort -u >"$just_cmds"

# Workflow commands: single-line `run:` values plus the content lines of
# `run: |` blocks (10-space indented in this workflow). Intervals like
# `{10}` are spelled out because mawk lacks regex interval support.
awk '
    /^ *run: \|/ { block = 1; next }
    block && /^          [^ ]/ {
        line = $0
        sub(/^ +/, "", line)
        print line
        next
    }
    block { block = 0 }
    /^ *run: / {
        line = $0
        sub(/^ *run: /, "", line)
        print line
    }
' .github/workflows/ci.yml | grep -v '^rustup' | sort -u >"$yml_cmds"

if ! diff -u "$yml_cmds" "$just_cmds"; then
    echo "ci-sync: justfile 'ci' recipe and ci.yml steps have drifted" >&2
    echo "(-: only in ci.yml, +: only in justfile). Update whichever side" >&2
    echo "is missing the command so local 'just ci' keeps mirroring CI." >&2
    exit 1
fi

echo "ci-sync: justfile and ci.yml agree on $(wc -l <"$just_cmds" | tr -d ' ') commands"
