# Local invocations mirroring CI (.github/workflows/ci.yml) exactly.
# Requires `just` (https://github.com/casey/just); every recipe body is a
# plain cargo command, so copy-paste works without it too.

# Run the full CI gate locally.
default: lint doc build test bench-check bench-baseline-check smoke

# Formatting + clippy, denying warnings (CI `lint` job).
lint:
    cargo fmt --all --check
    cargo clippy --workspace --all-targets -- -D warnings
    cargo clippy -p lifl-types -p lifl-shmem -p lifl-fl -p lifl-core -- -D clippy::redundant_clone

# Rustdoc gate: no broken links / bad doc syntax anywhere; the public
# `session` module additionally denies missing docs.
doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

# Tier-1 release build.
build:
    cargo build --release

# Tier-1 test suite.
test:
    cargo test -q

# Ensure every criterion bench target still compiles.
bench-check:
    cargo bench --no-run

# Actually run the benchmark suite (slow).
bench:
    cargo bench

# Regenerate the committed aggregation-path baseline (BENCH_aggregation.json).
bench-baseline:
    cargo run --release -p lifl-bench --bin bench_baseline

# CI gate: the baseline runner works in --quick mode and the committed
# baseline parses with the current schema (fails if missing or stale).
bench-baseline-check:
    cargo run --release -p lifl-bench --bin bench_baseline -- --quick --out target/bench_quick.json
    cargo run --release -p lifl-bench --bin bench_baseline -- --check BENCH_aggregation.json

# CI smoke step: the quickstart example runs end to end.
smoke:
    cargo run --release -p lifl-examples --example quickstart

# Run the multi-node cluster federation demo (sessions composed
# gateway-to-gateway over Update::RemoteBytes, bit-exactness asserted inline).
cluster-demo:
    cargo run --release -p lifl-examples --example cluster_federation

# Run the codec ablation (bytes-on-wire x time-to-accuracy sweep).
fig-codec:
    cargo run --release -p lifl-experiments --bin fig_codec

# Apply formatting in place.
fmt:
    cargo fmt --all
