//! Client failure detection via keep-alive heartbeats and over-provisioning
//! (§3: "LIFL detects client failures with keep-alive heartbeats and enhances
//! resilience by over-provisioning the number of clients").

use lifl_types::{ClientId, SimDuration, SimTime};
use std::collections::HashMap;

/// Tracks the last heartbeat of every selected client and flags the ones whose
/// heartbeat is older than the timeout.
#[derive(Debug, Clone)]
pub struct HeartbeatMonitor {
    timeout: SimDuration,
    last_seen: HashMap<ClientId, SimTime>,
}

impl HeartbeatMonitor {
    /// Creates a monitor with the given keep-alive timeout.
    pub fn new(timeout: SimDuration) -> Self {
        HeartbeatMonitor {
            timeout,
            last_seen: HashMap::new(),
        }
    }

    /// Registers a client at selection time (its first implicit heartbeat).
    pub fn register(&mut self, client: ClientId, now: SimTime) {
        self.last_seen.insert(client, now);
    }

    /// Records a heartbeat from a client. Unknown clients are registered.
    pub fn heartbeat(&mut self, client: ClientId, now: SimTime) {
        self.last_seen.insert(client, now);
    }

    /// Removes a client (for example once its update arrived).
    pub fn complete(&mut self, client: ClientId) {
        self.last_seen.remove(&client);
    }

    /// Clients whose last heartbeat is older than the timeout at `now`.
    pub fn failed_clients(&self, now: SimTime) -> Vec<ClientId> {
        let mut failed: Vec<ClientId> = self
            .last_seen
            .iter()
            .filter(|(_, seen)| now.duration_since(**seen) > self.timeout)
            .map(|(client, _)| *client)
            .collect();
        failed.sort();
        failed
    }

    /// Clients currently tracked (selected but not yet completed or failed).
    pub fn tracked(&self) -> usize {
        self.last_seen.len()
    }

    /// The keep-alive timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }
}

/// How many clients to select so that, with an expected drop-out rate, at
/// least `goal` updates arrive (the over-provisioning rule of §3).
pub fn over_provisioned_selection(goal: u64, expected_dropout_rate: f64) -> u64 {
    let rate = expected_dropout_rate.clamp(0.0, 0.95);
    ((goal as f64) / (1.0 - rate)).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_silent_clients() {
        let mut monitor = HeartbeatMonitor::new(SimDuration::from_secs(30.0));
        monitor.register(ClientId::new(1), SimTime::from_secs(0.0));
        monitor.register(ClientId::new(2), SimTime::from_secs(0.0));
        monitor.heartbeat(ClientId::new(2), SimTime::from_secs(25.0));
        let failed = monitor.failed_clients(SimTime::from_secs(40.0));
        assert_eq!(failed, vec![ClientId::new(1)]);
        assert_eq!(monitor.tracked(), 2);
        monitor.complete(ClientId::new(2));
        assert_eq!(monitor.tracked(), 1);
        assert_eq!(monitor.timeout().as_secs(), 30.0);
    }

    #[test]
    fn completed_clients_are_never_reported_failed() {
        let mut monitor = HeartbeatMonitor::new(SimDuration::from_secs(10.0));
        monitor.register(ClientId::new(7), SimTime::ZERO);
        monitor.complete(ClientId::new(7));
        assert!(monitor.failed_clients(SimTime::from_secs(100.0)).is_empty());
    }

    #[test]
    fn over_provisioning_covers_dropout() {
        assert_eq!(over_provisioned_selection(120, 0.0), 120);
        assert_eq!(over_provisioned_selection(120, 0.2), 150);
        assert_eq!(over_provisioned_selection(15, 0.25), 20);
        // Extreme drop-out rates are clamped so selection stays finite.
        assert!(over_provisioned_selection(10, 0.99) <= 200);
    }
}
