use super::scalar;

pub(super) unsafe fn axpy(acc: &mut [f32], src: &[f32], w: f32) {
    scalar::axpy(acc, src, w);
}

pub(super) unsafe fn drifted(acc: &mut [f32], w: f64) {
    scalar::drifted(acc, w as f32);
}

pub(super) unsafe fn undispatched(acc: &mut [f32]) {
    scalar::undispatched(acc);
}

pub(super) unsafe fn extra(acc: &mut [f32]) {
    acc.fill(1.0);
}
