//! Asynchronous FL aggregation (Fig. 11, §7 future work).
//!
//! The paper's current implementation supports synchronous FL only and lists
//! asynchronous FL as future work; Fig. 11 sketches the intended semantics
//! (FedBuff-style buffered asynchronous aggregation (Huba et al., 2022;
//! Nguyen et al., 2022)): the global model advances every time `goal` updates
//! have been aggregated, regardless of which round's model a client trained
//! against, and updates can keep streaming in while versions advance. This
//! module implements that semantics on top of the same cumulative FedAvg
//! accumulator, under both eager and lazy timing, so the extension point is
//! exercised and tested.

use lifl_fl::aggregate::{CumulativeFedAvg, ModelUpdate};
use lifl_fl::DenseModel;
use lifl_types::{AggregationTiming, LiflError, Result, RoundId, SimTime};

/// One committed global-model version.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelVersion {
    /// Version number (starts at 1 for the first committed aggregate).
    pub version: RoundId,
    /// The committed global model.
    pub model: DenseModel,
    /// Total samples folded into this version's window.
    pub samples: u64,
    /// Simulated time at which the version was committed.
    pub committed_at: SimTime,
    /// Number of updates whose base model was stale (trained against an older version).
    pub stale_updates: u64,
}

/// An asynchronous aggregator: commits a new global model every `goal`
/// received updates (Fig. 11's "Aggregation Goal = 2" pattern).
#[derive(Debug)]
pub struct AsyncAggregator {
    goal: u64,
    timing: AggregationTiming,
    accumulator: CumulativeFedAvg,
    buffered: Vec<ModelUpdate>,
    versions: Vec<ModelVersion>,
    received: u64,
    stale_in_window: u64,
}

impl AsyncAggregator {
    /// Creates an asynchronous aggregator committing every `goal` updates.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidAggregationGoal`] if `goal` is zero.
    pub fn new(goal: u64, timing: AggregationTiming) -> Result<Self> {
        if goal == 0 {
            return Err(LiflError::InvalidAggregationGoal(0));
        }
        Ok(AsyncAggregator {
            goal,
            timing,
            accumulator: CumulativeFedAvg::default(),
            buffered: Vec::new(),
            versions: Vec::new(),
            received: 0,
            stale_in_window: 0,
        })
    }

    /// The aggregation goal per committed version.
    pub fn goal(&self) -> u64 {
        self.goal
    }

    /// Committed versions so far.
    pub fn versions(&self) -> &[ModelVersion] {
        &self.versions
    }

    /// The latest committed global model, if any version has been committed.
    pub fn latest(&self) -> Option<&ModelVersion> {
        self.versions.last()
    }

    /// Submits one client update trained against `base_version` (0 = initial
    /// model), arriving at `now`. Returns the newly committed version if this
    /// update completed a window.
    ///
    /// # Errors
    /// Propagates aggregation errors (dimension mismatch, zero samples).
    pub fn submit(
        &mut self,
        update: ModelUpdate,
        base_version: u64,
        now: SimTime,
    ) -> Result<Option<ModelVersion>> {
        self.received += 1;
        if base_version < self.versions.len() as u64 {
            self.stale_in_window += 1;
        }
        match self.timing {
            AggregationTiming::Eager => {
                // Fold immediately (Fig. 11(a)).
                self.accumulator.fold(&update)?;
            }
            AggregationTiming::Lazy => {
                // Queue until the window is complete (Fig. 11(b)).
                self.buffered.push(update);
            }
        }
        if self.received.is_multiple_of(self.goal) {
            if self.timing == AggregationTiming::Lazy {
                for buffered in self.buffered.drain(..) {
                    self.accumulator.fold(&buffered)?;
                }
            }
            let aggregate = self.accumulator.finalize()?;
            let version = ModelVersion {
                version: RoundId::new(self.versions.len() as u64 + 1),
                model: aggregate.model,
                samples: aggregate.samples,
                committed_at: now,
                stale_updates: self.stale_in_window,
            };
            self.stale_in_window = 0;
            self.versions.push(version.clone());
            return Ok(Some(version));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifl_fl::aggregate::fedavg;
    use lifl_types::ClientId;

    fn update(i: u64, values: Vec<f32>, samples: u64) -> ModelUpdate {
        ModelUpdate::from_client(ClientId::new(i), DenseModel::from_vec(values), samples)
    }

    #[test]
    fn commits_every_goal_updates() {
        let mut agg = AsyncAggregator::new(2, AggregationTiming::Eager).unwrap();
        assert!(agg
            .submit(update(1, vec![1.0, 1.0], 1), 0, SimTime::from_secs(1.0))
            .unwrap()
            .is_none());
        let v1 = agg
            .submit(update(2, vec![3.0, 3.0], 1), 0, SimTime::from_secs(2.0))
            .unwrap()
            .expect("first version");
        assert_eq!(v1.version, RoundId::new(1));
        assert_eq!(v1.model.as_slice(), &[2.0, 2.0]);
        assert_eq!(v1.stale_updates, 0);
        // Next window: a client still training against version 0 is stale.
        agg.submit(update(3, vec![0.0, 0.0], 1), 0, SimTime::from_secs(3.0))
            .unwrap();
        let v2 = agg
            .submit(update(4, vec![4.0, 4.0], 3), 1, SimTime::from_secs(4.0))
            .unwrap()
            .expect("second version");
        assert_eq!(v2.version, RoundId::new(2));
        assert_eq!(v2.stale_updates, 1);
        assert_eq!(agg.versions().len(), 2);
        assert_eq!(agg.latest().unwrap().version, RoundId::new(2));
    }

    #[test]
    fn eager_and_lazy_commit_identical_models() {
        let updates: Vec<ModelUpdate> = (1..=6)
            .map(|i| update(i, vec![i as f32, (i * i) as f32], i))
            .collect();
        let mut eager = AsyncAggregator::new(3, AggregationTiming::Eager).unwrap();
        let mut lazy = AsyncAggregator::new(3, AggregationTiming::Lazy).unwrap();
        for (k, u) in updates.iter().enumerate() {
            let t = SimTime::from_secs(k as f64);
            eager.submit(u.clone(), 0, t).unwrap();
            lazy.submit(u.clone(), 0, t).unwrap();
        }
        assert_eq!(eager.versions().len(), 2);
        assert_eq!(lazy.versions().len(), 2);
        for (a, b) in eager.versions().iter().zip(lazy.versions()) {
            for (x, y) in a.model.as_slice().iter().zip(b.model.as_slice()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
        // Each window matches the batch FedAvg of its updates.
        let first_window = fedavg(&updates[..3]).unwrap();
        for (x, y) in eager.versions()[0]
            .model
            .as_slice()
            .iter()
            .zip(first_window.model.as_slice())
        {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_goal_is_rejected() {
        assert!(AsyncAggregator::new(0, AggregationTiming::Eager).is_err());
    }

    #[test]
    fn goal_one_commits_every_update() {
        let mut agg = AsyncAggregator::new(1, AggregationTiming::Lazy).unwrap();
        for i in 1..=4u64 {
            let committed = agg
                .submit(
                    update(i, vec![i as f32], 1),
                    i - 1,
                    SimTime::from_secs(i as f64),
                )
                .unwrap();
            assert!(committed.is_some());
        }
        assert_eq!(agg.versions().len(), 4);
        assert_eq!(agg.goal(), 1);
    }
}
