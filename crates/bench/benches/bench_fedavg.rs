//! Micro-benchmark: FedAvg folding (eager) and the threaded hierarchical runtime.
use criterion::{criterion_group, criterion_main, Criterion};
use lifl_core::session::{SessionBuilder, Update};
use lifl_fl::aggregate::{fedavg, ModelUpdate};
use lifl_fl::DenseModel;
use lifl_types::{ClientId, Topology};

fn updates(n: usize, dim: usize) -> Vec<ModelUpdate> {
    (0..n)
        .map(|i| {
            ModelUpdate::from_client(
                ClientId::new(i as u64),
                DenseModel::from_vec(vec![i as f32; dim]),
                (i + 1) as u64,
            )
        })
        .collect()
}

fn run_session(topology: Topology, updates: &[ModelUpdate]) {
    let mut session = SessionBuilder::new()
        .topology(topology)
        .build()
        .expect("session");
    session
        .ingest_all(updates.iter().cloned().map(Update::Dense))
        .expect("ingest");
    session.drive().expect("drive");
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fedavg");
    group.sample_size(20);
    let batch = updates(16, 10_000);
    group.bench_function("flat_fedavg_16x10k", |b| {
        b.iter(|| fedavg(std::hint::black_box(&batch)))
    });
    let hier = updates(8, 10_000);
    group.bench_function("threaded_hierarchy_8x10k", |b| {
        b.iter(|| run_session(Topology::two_level(4, 2), std::hint::black_box(&hier)))
    });
    group.bench_function("threaded_3level_8x10k", |b| {
        b.iter(|| {
            run_session(
                Topology::new(vec![2, 2, 2]).expect("topology"),
                std::hint::black_box(&hier),
            )
        })
    });
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
