//! Failure injection: stateless aggregator restart from a checkpoint, client
//! drop-out (over-provisioning), and shared-memory exhaustion handling.

use lifl_core::agent::LiflAgent;
use lifl_core::platform::{LiflPlatform, RoundSpec};
use lifl_shmem::ObjectStore;
use lifl_types::{ClusterConfig, LiflConfig, LiflError, ModelKind, NodeId, RoundId, SimTime};

#[test]
fn stateless_restart_recovers_from_checkpoint() {
    // The agent checkpoints the global model; a "crashed" aggregator is
    // replaced by a new one that resumes from the latest checkpoint
    // (aggregators hold no other state, §3 / Appendix B).
    let agent = LiflAgent::new(NodeId::new(0));
    agent.checkpoint(RoundId::new(5), vec![1, 2, 3, 4], SimTime::from_secs(50.0));
    agent.checkpoint(RoundId::new(6), vec![9, 9], SimTime::from_secs(60.0));
    let recovered = agent.checkpoints().latest().expect("checkpoint");
    assert_eq!(recovered.round, RoundId::new(6));
    assert_eq!(recovered.data, vec![9, 9]);
}

#[test]
fn client_dropout_still_completes_the_round() {
    // 20 clients were selected but only 15 deliver updates (the paper
    // over-provisions clients to tolerate drop-out). The round still
    // aggregates what arrived.
    let mut platform = LiflPlatform::new(ClusterConfig::default(), LiflConfig::default());
    let arrivals: Vec<SimTime> = (0..15).map(|i| SimTime::from_secs(i as f64)).collect();
    let report = platform.run_round(&RoundSpec::new(ModelKind::ResNet18, arrivals));
    assert_eq!(report.metrics.updates_aggregated, 15);
    assert!(report.metrics.aggregation_completion_time.as_secs() > 0.0);
}

#[test]
fn shared_memory_exhaustion_is_a_clean_error() {
    let store = ObjectStore::with_capacity(64);
    store.put(vec![0u8; 40]).unwrap();
    let err = store.put(vec![0u8; 40]).unwrap_err();
    assert!(matches!(err, LiflError::OutOfSharedMemory { .. }));
    // Recycling frees space and the platform continues.
    store.recycle_all();
    assert!(store.put(vec![0u8; 40]).is_ok());
}

#[test]
fn overload_beyond_cluster_capacity_degrades_gracefully() {
    // 150 updates exceed the 100-update cluster capacity; the round still
    // completes, using every node, just more slowly.
    let mut platform = LiflPlatform::new(ClusterConfig::default(), LiflConfig::default());
    let spec = RoundSpec::simultaneous(ModelKind::ResNet152, 150, SimTime::ZERO);
    let report = platform.run_round(&spec);
    assert_eq!(report.metrics.updates_aggregated, 150);
    assert_eq!(report.metrics.nodes_used, 5);
}
