//! Typed admission-control vocabulary for the streaming ingress path.
//!
//! A bounded session accepts client updates through `try_ingest`, which
//! answers with an [`AdmissionOutcome`] instead of an error: the update was
//! folded into the open round (`Admitted`), parked in a bounded per-leaf
//! queue awaiting the next round (`Queued`), or turned away because the
//! queue's slot or byte budget is exhausted (`Rejected`, carrying a
//! retry-after hint for the client's backoff loop).
//!
//! [`AdmissionConfig`] carries the queue caps plus the round-close policy:
//! `Exact` reproduces the legacy exact-fill behaviour (a round only closes
//! when every topology slot is filled), while `Quorum` closes a round once a
//! configurable minimum number of updates has landed, matching the paper's
//! partial-participation rounds.

use crate::error::{LiflError, Result};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Answer from a bounded `try_ingest`: what happened to the offered update.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdmissionOutcome {
    /// The update was folded into the currently open round.
    Admitted,
    /// The round is full; the update was parked in a bounded queue and will
    /// compete (by utility score) for a slot in the next round. `depth` is
    /// the occupancy of the target queue after enqueueing, so successive
    /// `Queued` outcomes on one queue report monotonically increasing depth.
    Queued {
        /// Occupancy of the target leaf queue after this update was parked.
        depth: usize,
    },
    /// Both the round and the target queue are full; the update was dropped
    /// and the client should retry after the hinted backoff.
    Rejected {
        /// Suggested client-side backoff before re-offering the update.
        retry_after: SimDuration,
    },
}

impl AdmissionOutcome {
    /// True for the `Admitted` arm.
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionOutcome::Admitted)
    }

    /// True for the `Queued` arm.
    pub fn is_queued(&self) -> bool {
        matches!(self, AdmissionOutcome::Queued { .. })
    }

    /// True for the `Rejected` arm.
    pub fn is_rejected(&self) -> bool {
        matches!(self, AdmissionOutcome::Rejected { .. })
    }
}

/// When an admission-controlled round is allowed to close.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RoundClose {
    /// Legacy behaviour: the round closes only when every topology slot is
    /// filled, and driving a partial round is an error.
    Exact,
    /// Partial participation: the round may close once `min_updates` have
    /// been admitted; stragglers past that point are cut off rather than
    /// waited for.
    Quorum {
        /// Minimum number of admitted updates before the round may close.
        min_updates: u32,
    },
}

impl RoundClose {
    /// The quorum for a round with `capacity` slots: `capacity` for `Exact`,
    /// the configured minimum (capped at `capacity`) for `Quorum`.
    pub fn required_updates(&self, capacity: usize) -> usize {
        match *self {
            RoundClose::Exact => capacity,
            RoundClose::Quorum { min_updates } => (min_updates as usize).min(capacity).max(1),
        }
    }
}

/// Knobs for the bounded admission path: per-leaf queue caps and the
/// round-close policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Maximum parked updates per leaf queue.
    pub queue_slots: usize,
    /// Maximum total payload bytes parked per leaf queue.
    pub queue_bytes: usize,
    /// Backoff hint returned with every `Rejected` outcome.
    pub retry_after: SimDuration,
    /// When the round is allowed to close.
    pub round_close: RoundClose,
}

impl AdmissionConfig {
    /// A conservative default: 64 parked updates / 16 MiB per leaf queue, a
    /// one-second retry hint, and legacy exact-fill round close.
    pub fn bounded(queue_slots: usize, queue_bytes: usize) -> AdmissionConfig {
        AdmissionConfig {
            queue_slots,
            queue_bytes,
            retry_after: SimDuration::from_secs(1.0),
            round_close: RoundClose::Exact,
        }
    }

    /// Switches the round-close policy to a quorum of `min_updates`.
    pub fn with_quorum(mut self, min_updates: u32) -> AdmissionConfig {
        self.round_close = RoundClose::Quorum { min_updates };
        self
    }

    /// Overrides the `Rejected` backoff hint.
    pub fn with_retry_after(mut self, retry_after: SimDuration) -> AdmissionConfig {
        self.retry_after = retry_after;
        self
    }

    /// Validates the caps: both budgets must be nonzero, and a quorum must
    /// ask for at least one update.
    pub fn validate(&self) -> Result<()> {
        if self.queue_slots == 0 {
            return Err(LiflError::InvalidConfig(
                "admission queue_slots must be nonzero".to_string(),
            ));
        }
        if self.queue_bytes == 0 {
            return Err(LiflError::InvalidConfig(
                "admission queue_bytes must be nonzero".to_string(),
            ));
        }
        if let RoundClose::Quorum { min_updates } = self.round_close {
            if min_updates == 0 {
                return Err(LiflError::InvalidConfig(
                    "admission quorum must require at least one update".to_string(),
                ));
            }
        }
        Ok(())
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::bounded(64, 16 * 1024 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_predicates() {
        assert!(AdmissionOutcome::Admitted.is_admitted());
        assert!(AdmissionOutcome::Queued { depth: 3 }.is_queued());
        let r = AdmissionOutcome::Rejected {
            retry_after: SimDuration::from_secs(2.0),
        };
        assert!(r.is_rejected());
        assert!(!r.is_admitted());
    }

    #[test]
    fn quorum_required_updates_caps_at_capacity() {
        assert_eq!(RoundClose::Exact.required_updates(8), 8);
        assert_eq!(RoundClose::Quorum { min_updates: 6 }.required_updates(8), 6);
        assert_eq!(
            RoundClose::Quorum { min_updates: 99 }.required_updates(8),
            8
        );
        assert_eq!(RoundClose::Quorum { min_updates: 0 }.required_updates(8), 1);
    }

    #[test]
    fn validate_rejects_zero_budgets() {
        assert!(AdmissionConfig::bounded(0, 1024).validate().is_err());
        assert!(AdmissionConfig::bounded(8, 0).validate().is_err());
        assert!(AdmissionConfig::bounded(8, 1024).validate().is_ok());
        assert!(AdmissionConfig::bounded(8, 1024)
            .with_quorum(0)
            .validate()
            .is_err());
        assert!(AdmissionConfig::bounded(8, 1024)
            .with_quorum(4)
            .validate()
            .is_ok());
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = AdmissionConfig::bounded(16, 4096)
            .with_quorum(12)
            .with_retry_after(SimDuration::from_millis(250.0));
        let json = serde_json::to_string(&cfg).unwrap();
        let back: AdmissionConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
