//! Algorithm-level asynchronous FL driver (FedBuff-style buffered async).
//!
//! The paper's platform currently supports synchronous FL and lists
//! asynchronous FL as future work (§6, §7); Fig. 11 sketches the intended
//! semantics. This driver provides the *algorithm* half of that extension:
//! clients continuously train against whatever global version they last
//! pulled, updates arrive in completion-time order, and the server commits a
//! new version every `buffer_goal` accepted updates, down-weighting stale
//! updates with a [`StalenessPolicy`]. The platform half (how those commits
//! map onto the aggregation hierarchy) lives in `lifl-core::async_round`.

use crate::aggregate::CumulativeFedAvg;
use crate::codec::{ErrorFeedback, UpdateCodec};
use crate::dataset::FederatedDataset;
use crate::metrics::accuracy_percent;
use crate::model::DenseModel;
use crate::population::Population;
use crate::staleness::{StalenessPolicy, StalenessTracker};
use crate::trainer::{LocalTrainer, TrainerConfig};
use lifl_simcore::SimRng;
use lifl_types::{CodecKind, LiflError, ModelKind, Result, SimTime};

/// Configuration of the asynchronous driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncDriverConfig {
    /// Local-training configuration.
    pub trainer: TrainerConfig,
    /// Number of client updates buffered before a commit (FedBuff's K).
    pub buffer_goal: usize,
    /// Number of global versions to commit before stopping.
    pub target_versions: usize,
    /// Number of clients training concurrently (the concurrency of Fig. 11).
    pub concurrency: usize,
    /// Staleness weighting applied to accepted updates.
    pub staleness: StalenessPolicy,
    /// Workload model (drives per-client training time).
    pub model: ModelKind,
    /// Evaluate accuracy every this many committed versions (1 = every version).
    pub eval_every: usize,
    /// Codec every client update travels through before buffering. Lossy
    /// codecs run per-client error feedback and the staleness-weighted
    /// update is folded via the fused encoded path — no dense intermediate.
    pub codec: CodecKind,
}

impl Default for AsyncDriverConfig {
    fn default() -> Self {
        AsyncDriverConfig {
            trainer: TrainerConfig::default(),
            buffer_goal: 10,
            target_versions: 20,
            concurrency: 40,
            staleness: StalenessPolicy::Polynomial { exponent: 0.5 },
            model: ModelKind::ResNet18,
            eval_every: 1,
            codec: CodecKind::Identity,
        }
    }
}

impl AsyncDriverConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] for a zero buffer goal, zero
    /// concurrency or an invalid staleness policy.
    pub fn validate(&self) -> Result<()> {
        if self.buffer_goal == 0 {
            return Err(LiflError::InvalidConfig(
                "buffer_goal must be at least 1".into(),
            ));
        }
        if self.concurrency == 0 {
            return Err(LiflError::InvalidConfig(
                "concurrency must be at least 1".into(),
            ));
        }
        if self.target_versions == 0 {
            return Err(LiflError::InvalidConfig(
                "target_versions must be at least 1".into(),
            ));
        }
        self.staleness.validate()
    }
}

/// One committed global version with its bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncVersionOutcome {
    /// Version number, starting at 1.
    pub version: usize,
    /// Simulated wall-clock time of the commit.
    pub committed_at: SimTime,
    /// Updates folded into this version.
    pub updates: usize,
    /// Updates whose base model was stale.
    pub stale_updates: usize,
    /// Mean staleness of the folded updates.
    pub mean_staleness: f64,
    /// Test accuracy after the commit, if evaluated.
    pub accuracy: Option<f64>,
}

/// In-flight local training: which client, which base version, when it finishes.
#[derive(Debug, Clone, Copy, PartialEq)]
struct InFlight {
    client_idx: usize,
    base_version: usize,
    finish_at: SimTime,
}

/// Runs buffered asynchronous FedAvg over a population and dataset.
#[derive(Debug, Clone)]
pub struct AsyncFlDriver {
    dataset: FederatedDataset,
    population: Population,
    trainer: LocalTrainer,
    config: AsyncDriverConfig,
    global: DenseModel,
    history: Vec<AsyncVersionOutcome>,
    tracker: StalenessTracker,
    feedback: ErrorFeedback,
}

impl AsyncFlDriver {
    /// Creates a driver with a zero-initialised global model.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] when the configuration is invalid.
    pub fn new(
        dataset: FederatedDataset,
        population: Population,
        config: AsyncDriverConfig,
    ) -> Result<Self> {
        config.validate()?;
        let trainer = LocalTrainer::new(dataset.num_features, dataset.num_classes, config.trainer);
        let global = dataset.initial_model();
        let feedback = ErrorFeedback::new(UpdateCodec::with_seed(config.codec, 0xA51C));
        Ok(AsyncFlDriver {
            dataset,
            population,
            trainer,
            config,
            global,
            history: Vec::new(),
            tracker: StalenessTracker::new(),
            feedback,
        })
    }

    /// The current global model.
    pub fn global_model(&self) -> &DenseModel {
        &self.global
    }

    /// Committed version outcomes.
    pub fn history(&self) -> &[AsyncVersionOutcome] {
        &self.history
    }

    /// Aggregate staleness statistics across the whole run.
    pub fn staleness(&self) -> &StalenessTracker {
        &self.tracker
    }

    /// Current test accuracy of the global model.
    pub fn evaluate(&self) -> f64 {
        accuracy_percent(&self.trainer, &self.global, self.dataset.test_set())
    }

    /// Runs the configured number of versions and returns the history.
    ///
    /// The event loop keeps `concurrency` clients training at all times: when
    /// a client finishes, its update is weighted by staleness and folded into
    /// the buffer, the client immediately pulls the latest global model and
    /// starts the next local round, and every `buffer_goal` accepted updates a
    /// new version is committed.
    pub fn run(&mut self, rng: &mut SimRng) -> Vec<AsyncVersionOutcome> {
        let clients = self.population.clients().to_vec();
        if clients.is_empty() {
            return Vec::new();
        }
        // Seed the in-flight set with `concurrency` random clients at t = 0.
        let mut in_flight: Vec<InFlight> = Vec::with_capacity(self.config.concurrency);
        let mut order: Vec<usize> = (0..clients.len()).collect();
        rng.shuffle(&mut order);
        for &client_idx in order.iter().take(self.config.concurrency) {
            let finish_at = SimTime::ZERO
                + clients[client_idx].hibernation(rng)
                + clients[client_idx].training_time(self.config.model);
            in_flight.push(InFlight {
                client_idx,
                base_version: 0,
                finish_at,
            });
        }
        let mut buffer = CumulativeFedAvg::new(self.dataset.model_dim());
        let mut buffered = 0usize;
        let mut stale_in_window = 0usize;
        let mut staleness_sum = 0u64;

        while self.history.len() < self.config.target_versions {
            // Pop the earliest completion.
            let (next_idx, _) = match in_flight
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.finish_at.as_secs().total_cmp(&b.1.finish_at.as_secs()))
            {
                Some((i, f)) => (i, *f),
                None => break,
            };
            let finished = in_flight.swap_remove(next_idx);
            let client = &clients[finished.client_idx];
            let now = finished.finish_at;
            let tau = (self.history.len() - finished.base_version) as u64;
            self.tracker.record(tau);
            staleness_sum += tau;
            if tau > 0 {
                stale_in_window += 1;
            }

            // Local training against the version the client based on. We train
            // against the *current* global as an approximation of keeping a
            // copy of every historical version; the staleness weight encodes
            // the trust discount.
            let shard = self.dataset.shard(client.id);
            let (local, _) = self.trainer.train(&self.global, shard, rng);
            let samples = shard.len().max(1) as u64;
            let weighted_samples = self.config.staleness.scaled_samples(samples, tau);
            // The staleness discount rides the sample weight of the
            // codec-transparent envelope: lossy codecs ship the encoded form
            // and fold fused, dense stays dense, through one path.
            let update = self
                .feedback
                .encode_update(client.id, local, weighted_samples);
            if buffer.fold_update(&update).is_ok() {
                buffered += 1;
            }
            self.feedback.recycle_update(update);

            // Commit when the buffer goal is reached.
            if buffered >= self.config.buffer_goal {
                if let Ok(aggregate) = buffer.finalize() {
                    self.global = aggregate.model;
                }
                let version = self.history.len() + 1;
                let accuracy = if version.is_multiple_of(self.config.eval_every.max(1)) {
                    Some(self.evaluate())
                } else {
                    None
                };
                self.history.push(AsyncVersionOutcome {
                    version,
                    committed_at: now,
                    updates: buffered,
                    stale_updates: stale_in_window,
                    mean_staleness: staleness_sum as f64 / buffered as f64,
                    accuracy,
                });
                buffer = CumulativeFedAvg::new(self.dataset.model_dim());
                buffered = 0;
                stale_in_window = 0;
                staleness_sum = 0;
            }

            // The finished client immediately starts the next local round
            // against the latest committed version.
            let finish_at = now + client.hibernation(rng) + client.training_time(self.config.model);
            in_flight.push(InFlight {
                client_idx: finished.client_idx,
                base_version: self.history.len(),
                finish_at,
            });
        }
        self.history.clone()
    }

    /// The accuracy-versus-version curve (version, accuracy percent).
    pub fn accuracy_curve(&self) -> Vec<(usize, f64)> {
        self.history
            .iter()
            .filter_map(|v| v.accuracy.map(|a| (v.version, a)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientAvailability;
    use crate::dataset::DatasetConfig;
    use crate::population::PopulationConfig;

    fn setup(seed: u64, config: AsyncDriverConfig) -> (AsyncFlDriver, SimRng) {
        let mut rng = SimRng::from_seed(seed);
        let dataset = FederatedDataset::generate(
            DatasetConfig {
                num_clients: 40,
                num_features: 12,
                num_classes: 6,
                mean_samples_per_client: 40,
                dirichlet_alpha: 0.5,
                test_samples: 300,
                noise_std: 0.4,
            },
            &mut rng,
        );
        let population = Population::generate(
            PopulationConfig {
                total_clients: 40,
                active_per_round: config.concurrency,
                availability: ClientAvailability::Hibernating { max_secs: 30.0 },
                mean_samples: 40,
                speed_spread: 0.5,
            },
            &mut rng,
        );
        let driver = AsyncFlDriver::new(dataset, population, config).unwrap();
        (driver, rng)
    }

    fn fast_config() -> AsyncDriverConfig {
        AsyncDriverConfig {
            trainer: TrainerConfig {
                batch_size: 16,
                learning_rate: 0.05,
                local_epochs: 2,
            },
            buffer_goal: 8,
            target_versions: 10,
            concurrency: 16,
            staleness: StalenessPolicy::Polynomial { exponent: 0.5 },
            model: ModelKind::ResNet18,
            eval_every: 1,
            codec: CodecKind::Identity,
        }
    }

    #[test]
    fn commits_requested_number_of_versions() {
        let (mut driver, mut rng) = setup(5, fast_config());
        let versions = driver.run(&mut rng);
        assert_eq!(versions.len(), 10);
        for (i, v) in versions.iter().enumerate() {
            assert_eq!(v.version, i + 1);
            assert_eq!(v.updates, 8);
            assert!(v.accuracy.is_some());
        }
        // Commits happen in non-decreasing time order.
        for pair in versions.windows(2) {
            assert!(pair[1].committed_at.as_secs() >= pair[0].committed_at.as_secs());
        }
    }

    #[test]
    fn accuracy_improves_over_versions() {
        let (mut driver, mut rng) = setup(
            42,
            AsyncDriverConfig {
                target_versions: 15,
                ..fast_config()
            },
        );
        let initial = driver.evaluate();
        driver.run(&mut rng);
        let final_acc = driver.evaluate();
        assert!(
            final_acc > initial + 10.0,
            "async training should learn: {initial} -> {final_acc}"
        );
        assert_eq!(driver.accuracy_curve().len(), 15);
    }

    #[test]
    fn staleness_is_observed_and_bounded_by_version_count() {
        let (mut driver, mut rng) = setup(9, fast_config());
        driver.run(&mut rng);
        let tracker = driver.staleness();
        assert!(tracker.count() >= 10 * 8);
        assert!(
            tracker.max() <= 10,
            "staleness cannot exceed committed versions"
        );
        // With clients continuously training across commits, some staleness
        // must appear after the first version.
        assert!(tracker.stale_count() > 0);
    }

    #[test]
    fn quantized_async_single_commit_stays_within_quantization_error() {
        // With one committed version both runs fold exactly the same updates
        // in the same order (the sim RNG stream is untouched by the codec),
        // so the only divergence is the per-update quantization error.
        let config = AsyncDriverConfig {
            target_versions: 1,
            ..fast_config()
        };
        let (mut dense, mut rng_d) = setup(23, config);
        let (mut quant, mut rng_q) = setup(
            23,
            AsyncDriverConfig {
                codec: CodecKind::Uniform8,
                ..config
            },
        );
        dense.run(&mut rng_d);
        quant.run(&mut rng_q);
        let max_abs = dense
            .global_model()
            .as_slice()
            .iter()
            .fold(0.0f32, |a, v| a.max(v.abs()));
        // One quantization step of the largest update magnitude, with slack
        // for the weighted averaging across the buffer.
        let tolerance = (2.0 * max_abs / 127.0).max(1e-4);
        for (a, b) in dense
            .global_model()
            .as_slice()
            .iter()
            .zip(quant.global_model().as_slice())
        {
            assert!(
                (a - b).abs() <= tolerance,
                "uniform8 async drifted: |{a} - {b}| > {tolerance}"
            );
        }
    }

    #[test]
    fn quantized_async_run_still_learns() {
        let (mut driver, mut rng) = setup(
            31,
            AsyncDriverConfig {
                codec: CodecKind::Uniform8,
                target_versions: 12,
                ..fast_config()
            },
        );
        let initial = driver.evaluate();
        driver.run(&mut rng);
        let final_acc = driver.evaluate();
        assert!(
            final_acc > initial + 10.0,
            "quantized async training should learn: {initial} -> {final_acc}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut a, mut ra) = setup(77, fast_config());
        let (mut b, mut rb) = setup(77, fast_config());
        let va = a.run(&mut ra);
        let vb = b.run(&mut rb);
        assert_eq!(va, vb);
        assert_eq!(a.global_model(), b.global_model());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut rng = SimRng::from_seed(1);
        let dataset = FederatedDataset::generate(
            DatasetConfig {
                num_clients: 4,
                num_features: 4,
                num_classes: 2,
                mean_samples_per_client: 10,
                dirichlet_alpha: 1.0,
                test_samples: 10,
                noise_std: 0.2,
            },
            &mut rng,
        );
        let population = Population::generate(
            PopulationConfig {
                total_clients: 4,
                active_per_round: 2,
                availability: ClientAvailability::AlwaysOn,
                mean_samples: 10,
                speed_spread: 0.1,
            },
            &mut rng,
        );
        for bad in [
            AsyncDriverConfig {
                buffer_goal: 0,
                ..AsyncDriverConfig::default()
            },
            AsyncDriverConfig {
                concurrency: 0,
                ..AsyncDriverConfig::default()
            },
            AsyncDriverConfig {
                target_versions: 0,
                ..AsyncDriverConfig::default()
            },
            AsyncDriverConfig {
                staleness: StalenessPolicy::Polynomial { exponent: 0.0 },
                ..AsyncDriverConfig::default()
            },
        ] {
            assert!(AsyncFlDriver::new(dataset.clone(), population.clone(), bad).is_err());
        }
    }
}
