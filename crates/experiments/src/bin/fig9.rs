//! Regenerates Fig. 9 (time-to-accuracy and cost-to-accuracy).
//! Pass `--rounds N` to change the number of simulated FL rounds (default 40),
//! `--sweep-codecs` to additionally sweep every update codec across the
//! three systems (codec × system time-to-accuracy interactions), and
//! `--sweep-cluster` to drive the single-node-vs-cluster federation sweep
//! (bytes over machines and hop cost per codec and node count, bit-exactness
//! proven inline).
fn main() {
    let rounds = std::env::args()
        .skip_while(|a| a != "--rounds")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let sweep_codecs = std::env::args().any(|a| a == "--sweep-codecs");
    let sweep_cluster = std::env::args().any(|a| a == "--sweep-cluster");
    for model in [
        lifl_types::ModelKind::ResNet18,
        lifl_types::ModelKind::ResNet152,
    ] {
        let comparison = lifl_experiments::fig9_fig10::run_workload(model, rounds, 50.0);
        println!("{}", lifl_experiments::fig9_fig10::format(&comparison));
        if sweep_codecs {
            let sweep = lifl_experiments::fig9_fig10::codec_sweep(model, rounds, 50.0);
            println!(
                "{}",
                lifl_experiments::fig9_fig10::format_codec_sweep(&sweep)
            );
        }
    }
    if sweep_cluster {
        // The in-process federation aggregates real parameters; sweep a
        // mid-sized update so the run stays fast while the byte accounting
        // is meaningful.
        let rows = lifl_experiments::fig9_fig10::cluster_sweep(4096, &[1, 2, 4, 8]);
        println!(
            "{}",
            lifl_experiments::fig9_fig10::format_cluster_sweep(&rows)
        );
    }
}
