mod avx2;
mod scalar;

pub fn axpy(acc: &mut [f32], src: &[f32], w: f32, simd: bool) {
    if simd {
        unsafe { avx2::axpy(acc, src, w) }
    } else {
        scalar::axpy(acc, src, w);
    }
}
