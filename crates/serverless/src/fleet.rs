//! KPA-driven aggregator-fleet control: queue depth in, leaf counts out.
//!
//! The streaming ingress (`lifl-core`'s admission queues) exposes one load
//! signal per node — the depth of its bounded backlog. This module adapts
//! the stable/panic-window [`KpaAutoscaler`] into
//! a fleet controller over that signal: each node's queue depth is treated
//! as the node's "concurrency", and the KPA control loop's desired replica
//! count becomes the desired number of leaf aggregators in that node's
//! subtree. The cluster applies decisions at round boundaries only (an
//! aggregation tree cannot be re-split mid-fold), so the controller runs on
//! a synthetic clock that advances one fixed period per round — the whole
//! loop is a pure function of the arrival trace, making spawn/retire
//! sequences reproducible run-to-run.

use crate::kpa::{KpaAutoscaler, KpaConfig};
use lifl_types::{LiflError, Result, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of the aggregator-fleet controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// The KPA control loop driving each node's leaf count.
    pub kpa: KpaConfig,
    /// Lower bound on leaves per node (a node's subtree never retires below
    /// this).
    pub min_leaves: u32,
    /// Upper bound on leaves per node (spawns saturate here).
    pub max_leaves: u32,
    /// How much synthetic time one round advances the control loop's clock.
    pub round_period: SimDuration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            // Rounds are the control interval, so the windows must span a
            // useful number of them: with a 1 s round period the defaults
            // average depth over 8 rounds (stable) and 2 rounds (panic).
            kpa: KpaConfig {
                target_concurrency: 4.0,
                stable_window: SimDuration::from_secs(8.0),
                panic_window: SimDuration::from_secs(2.0),
                panic_threshold: 2.0,
                panic_hold: SimDuration::from_secs(4.0),
                scale_to_zero_grace: SimDuration::from_secs(8.0),
                max_replicas: 1024,
            },
            min_leaves: 1,
            max_leaves: 64,
            round_period: SimDuration::from_secs(1.0),
        }
    }
}

impl FleetConfig {
    /// Creates a config targeting `target_depth` queued updates per leaf.
    pub fn with_target_depth(mut self, target_depth: f64) -> Self {
        self.kpa.target_concurrency = target_depth;
        self
    }

    /// Bounds the per-node leaf count to `[min, max]`.
    pub fn with_leaf_bounds(mut self, min: u32, max: u32) -> Self {
        self.min_leaves = min;
        self.max_leaves = max;
        self
    }

    /// Validates the bounds and clock period.
    ///
    /// # Errors
    /// Fails when the leaf bounds are empty or inverted, or the round period
    /// is not positive.
    pub fn validate(&self) -> Result<()> {
        if self.min_leaves == 0 {
            return Err(LiflError::InvalidConfig(
                "fleet min_leaves must be at least 1".to_string(),
            ));
        }
        if self.max_leaves < self.min_leaves {
            return Err(LiflError::InvalidConfig(format!(
                "fleet leaf bounds inverted: min {} > max {}",
                self.min_leaves, self.max_leaves
            )));
        }
        if self.round_period <= SimDuration::ZERO {
            return Err(LiflError::InvalidConfig(
                "fleet round_period must be positive".to_string(),
            ));
        }
        Ok(())
    }
}

/// What the controller decided for one node at one round boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetDecision {
    /// The node the decision applies to.
    pub node: usize,
    /// The round boundary (0-based) the decision was taken at.
    pub round: u64,
    /// The synthetic control-loop time of the evaluation.
    pub at: SimTime,
    /// The queue depth observed for this node this round.
    pub queue_depth: f64,
    /// Leaves the node's subtree had going into the boundary.
    pub current_leaves: u32,
    /// Leaves the controller wants the subtree to have.
    pub desired_leaves: u32,
    /// Whether the node's control loop is in panic mode.
    pub panicking: bool,
}

impl FleetDecision {
    /// Leaves to add (zero when holding or retiring).
    pub fn spawned(&self) -> u32 {
        self.desired_leaves.saturating_sub(self.current_leaves)
    }

    /// Leaves to remove (zero when holding or growing).
    pub fn retired(&self) -> u32 {
        self.current_leaves.saturating_sub(self.desired_leaves)
    }

    /// Whether the decision changes the subtree at all.
    pub fn is_resize(&self) -> bool {
        self.desired_leaves != self.current_leaves
    }
}

/// A deterministic, per-node KPA fleet controller for leaf aggregators.
///
/// One [`KpaAutoscaler`] per node, all driven off a synthetic clock that
/// advances [`FleetConfig::round_period`] per observed round — no wall
/// clock anywhere, so the same depth trace always yields the same
/// spawn/retire sequence.
#[derive(Debug, Clone)]
pub struct FleetController {
    config: FleetConfig,
    scalers: Vec<KpaAutoscaler>,
    round: u64,
}

impl FleetController {
    /// Creates a controller for `nodes` independent subtrees.
    ///
    /// # Errors
    /// Fails when the configuration is invalid or `nodes` is zero.
    pub fn new(config: FleetConfig, nodes: usize) -> Result<FleetController> {
        config.validate()?;
        if nodes == 0 {
            return Err(LiflError::InvalidConfig(
                "fleet controller needs at least one node".to_string(),
            ));
        }
        Ok(FleetController {
            config,
            scalers: (0..nodes).map(|_| KpaAutoscaler::new(config.kpa)).collect(),
            round: 0,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Nodes under control.
    pub fn nodes(&self) -> usize {
        self.scalers.len()
    }

    /// Rounds observed so far.
    pub fn rounds_observed(&self) -> u64 {
        self.round
    }

    /// The synthetic control-loop time of round boundary `round`.
    fn clock(&self, round: u64) -> SimTime {
        SimTime::from_secs(self.config.round_period.as_secs() * round as f64)
    }

    /// Feeds one round boundary: each node's observed queue depth goes into
    /// its control loop, and the loop's desired replica count — clamped to
    /// the configured leaf bounds — comes back as that node's desired leaf
    /// count. `depths` and `current_leaves` are indexed by node; missing
    /// entries read as zero depth / `min_leaves`.
    pub fn observe_round(&mut self, depths: &[f64], current_leaves: &[u32]) -> Vec<FleetDecision> {
        let round = self.round;
        self.round += 1;
        let now = self.clock(round);
        let min = self.config.min_leaves;
        let max = self.config.max_leaves;
        self.scalers
            .iter_mut()
            .enumerate()
            .map(|(node, scaler)| {
                let depth = depths.get(node).copied().unwrap_or(0.0);
                let current = current_leaves.get(node).copied().unwrap_or(min);
                scaler.observe(now, depth);
                let decision = scaler.evaluate(now, current);
                let desired = decision.desired_replicas.clamp(min, max);
                FleetDecision {
                    node,
                    round,
                    at: now,
                    queue_depth: depth,
                    current_leaves: current,
                    desired_leaves: desired,
                    panicking: decision.panicking,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(nodes: usize) -> FleetController {
        FleetController::new(FleetConfig::default(), nodes).unwrap()
    }

    #[test]
    fn config_validation_catches_bad_bounds() {
        assert!(FleetConfig::default().validate().is_ok());
        assert!(FleetConfig::default()
            .with_leaf_bounds(0, 4)
            .validate()
            .is_err());
        assert!(FleetConfig::default()
            .with_leaf_bounds(8, 4)
            .validate()
            .is_err());
        let config = FleetConfig {
            round_period: SimDuration::ZERO,
            ..FleetConfig::default()
        };
        assert!(config.validate().is_err());
        assert!(FleetController::new(FleetConfig::default(), 0).is_err());
    }

    #[test]
    fn empty_queues_hold_the_minimum_fleet() {
        let mut fleet = controller(2);
        for _ in 0..20 {
            let decisions = fleet.observe_round(&[0.0, 0.0], &[1, 1]);
            for d in &decisions {
                assert_eq!(d.desired_leaves, 1, "never below min_leaves");
                assert!(!d.is_resize());
            }
        }
    }

    #[test]
    fn sustained_backlog_grows_the_hot_node_only() {
        let mut fleet = controller(2);
        let mut leaves = [1u32, 1u32];
        for _ in 0..12 {
            let decisions = fleet.observe_round(&[32.0, 0.0], &leaves);
            leaves = [decisions[0].desired_leaves, decisions[1].desired_leaves];
        }
        assert!(
            leaves[0] >= 8,
            "depth 32 / target 4 should want ~8 leaves, got {}",
            leaves[0]
        );
        assert_eq!(leaves[1], 1, "idle node stays at the minimum");
    }

    #[test]
    fn spike_panics_then_retires_after_drain() {
        let mut fleet = controller(1);
        let mut leaves = 1u32;
        let mut panicked = false;
        // Four quiet rounds, a four-round spike, then a long drain.
        let trace: Vec<f64> = [1.0; 4]
            .into_iter()
            .chain([64.0; 4])
            .chain([0.0; 16])
            .collect();
        let mut peak = 1u32;
        for depth in &trace {
            let decision = fleet.observe_round(&[*depth], &[leaves])[0];
            panicked |= decision.panicking;
            leaves = decision.desired_leaves;
            peak = peak.max(leaves);
        }
        assert!(panicked, "the spike should trip the panic window");
        assert!(peak >= 8, "spike should grow the fleet, peaked at {peak}");
        assert_eq!(leaves, 1, "drained fleet retires back to the minimum");
    }

    #[test]
    fn growth_is_capped_by_max_leaves() {
        let config = FleetConfig::default().with_leaf_bounds(1, 4);
        let mut fleet = FleetController::new(config, 1).unwrap();
        let mut leaves = 1u32;
        for _ in 0..10 {
            leaves = fleet.observe_round(&[1000.0], &[leaves])[0].desired_leaves;
        }
        assert_eq!(leaves, 4);
    }

    #[test]
    fn same_trace_yields_the_same_decision_sequence() {
        let trace: Vec<[f64; 2]> = (0..24)
            .map(|i| [((i * 7) % 13) as f64, ((i * 11) % 37) as f64])
            .collect();
        let run = || {
            let mut fleet = controller(2);
            let mut leaves = [1u32, 1u32];
            let mut decisions = Vec::new();
            for depths in &trace {
                let step = fleet.observe_round(depths, &leaves);
                leaves = [step[0].desired_leaves, step[1].desired_leaves];
                decisions.extend(step);
            }
            decisions
        };
        assert_eq!(run(), run(), "fleet control must be trace-deterministic");
    }
}
