//! Figure 7: data-plane improvement for hierarchical aggregation.
//!
//! (a) latency and (b) CPU of a single intra-node model-update transfer under
//! SF, SL (with sidecar/broker breakdown) and LIFL for ResNet-18/34/152;
//! (c) LIFL's aggregation timeline for the §4.1 hierarchy (1 top + 4 leaves,
//! 8 trainers, ResNet-152).

use crate::report::format_table;
use lifl_core::platform::{LiflPlatform, RoundSpec};
use lifl_dataplane::{CostModel, DataPlaneKind};
use lifl_simcore::Gantt;
use lifl_types::{ClusterConfig, LiflConfig, ModelKind, SimTime};
use serde::Serialize;

/// One row of Fig. 7(a)/(b).
#[derive(Debug, Clone, Serialize)]
pub struct TransferRow {
    /// Model name.
    pub model: String,
    /// System label.
    pub system: String,
    /// Transfer latency in seconds.
    pub latency_s: f64,
    /// CPU in giga-cycles.
    pub cpu_gcycles: f64,
    /// Share of the latency attributed to the sidecar (SL only).
    pub sidecar_share: f64,
    /// Share of the latency attributed to the message broker (SL only).
    pub broker_share: f64,
}

/// The full Fig. 7 result.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Result {
    /// Rows of Fig. 7(a)/(b).
    pub transfers: Vec<TransferRow>,
    /// LIFL's per-round completion time in the Fig. 7(c) setup.
    pub lifl_round_seconds: f64,
    /// Rendered timeline (ASCII stand-in for Fig. 7(c)).
    #[serde(skip)]
    pub timeline: Gantt,
}

/// Runs the Fig. 7 experiments.
pub fn run() -> Fig7Result {
    let cost = CostModel::paper_calibrated();
    let mut transfers = Vec::new();
    for model in ModelKind::paper_models() {
        let bytes = model.update_bytes();
        for (label, plane) in [
            ("LIFL", DataPlaneKind::LiflSharedMemory),
            ("SF", DataPlaneKind::ServerfulGrpc),
            ("SL", DataPlaneKind::ServerlessBrokerSidecar),
        ] {
            let pipeline = plane.intra_node_pipeline(bytes, &cost.models);
            let total = pipeline.latency().as_secs();
            transfers.push(TransferRow {
                model: model.to_string(),
                system: label.to_string(),
                latency_s: total,
                cpu_gcycles: pipeline.cpu().as_giga(),
                sidecar_share: pipeline.latency_of("sidecar").as_secs() / total.max(1e-12),
                broker_share: pipeline.latency_of("broker").as_secs() / total.max(1e-12),
            });
        }
    }

    // Fig. 7(c): the §4.1 hierarchy — 8 trainers, 1 top + 4 leaves on one node.
    let cluster = ClusterConfig {
        aggregation_nodes: 1,
        ..ClusterConfig::default()
    };
    let mut platform = LiflPlatform::new(cluster, LiflConfig::default());
    // Trainer arrivals spread over the round as their uploads complete.
    let arrivals: Vec<SimTime> = (0..8)
        .map(|i| SimTime::from_secs(20.0 + i as f64 * 2.5))
        .collect();
    let report = platform.run_round(&RoundSpec::new(ModelKind::ResNet152, arrivals));
    Fig7Result {
        transfers,
        lifl_round_seconds: report.eval_finished.as_secs(),
        timeline: report.gantt,
    }
}

/// Formats the result as the paper's tables plus an ASCII timeline.
pub fn format(result: &Fig7Result) -> String {
    let rows: Vec<Vec<String>> = result
        .transfers
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.system.clone(),
                format!("{:.2}", r.latency_s),
                format!("{:.2}", r.cpu_gcycles),
                format!("{:.0}%", r.sidecar_share * 100.0),
                format!("{:.0}%", r.broker_share * 100.0),
            ]
        })
        .collect();
    let mut out = String::from("Fig. 7(a,b): single intra-node model-update transfer\n");
    out.push_str(&format_table(
        &[
            "model",
            "system",
            "latency (s)",
            "CPU (Gcycles)",
            "+SC",
            "+MB",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\nFig. 7(c): LIFL hierarchical aggregation round completes in {:.1} s\n",
        result.lifl_round_seconds
    ));
    out.push_str(&result.timeline.render_ascii(72));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_ratios() {
        let result = run();
        assert_eq!(result.transfers.len(), 9);
        let get = |model: &str, system: &str| {
            result
                .transfers
                .iter()
                .find(|r| r.model == model && r.system == system)
                .unwrap()
                .clone()
        };
        let lifl = get("ResNet-152", "LIFL");
        let sf = get("ResNet-152", "SF");
        let sl = get("ResNet-152", "SL");
        // Headline claims: 3x vs serverful, ~5.8x vs serverless (§1).
        assert!((0.7..0.85).contains(&lifl.latency_s));
        assert!((2.0..4.5).contains(&(sf.latency_s / lifl.latency_s)));
        assert!((4.5..8.0).contains(&(sl.latency_s / lifl.latency_s)));
        assert!(sl.cpu_gcycles > sf.cpu_gcycles);
        assert!(sf.cpu_gcycles > lifl.cpu_gcycles);
        // SL's breakdown marks sidecar and broker contributions.
        assert!(sl.sidecar_share > 0.2);
        assert!(sl.broker_share > 0.1);
        // Fig. 7(c): LIFL's round is faster than the ~57 s serverful round of Fig. 4.
        assert!(result.lifl_round_seconds < 57.0);
        let text = format(&result);
        assert!(text.contains("ResNet-152"));
    }
}
