use std::collections::HashMap;
use std::collections::HashSet;
use std::time::Instant;
use std::time::SystemTime;

pub fn fold(updates: HashMap<u64, f32>) -> f32 {
    let started = Instant::now();
    let _ = SystemTime::now();
    let mut seen = HashSet::new();
    let mut acc = 0.0;
    for (id, v) in updates {
        seen.insert(id);
        acc += v;
    }
    let _ = started.elapsed();
    acc
}
