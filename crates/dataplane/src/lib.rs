//! # lifl-dataplane
//!
//! Data-plane component models and calibrated cost models for the three
//! families of systems the paper compares (§4, §6.1, Appendix F):
//!
//! * the **serverful** data plane: direct gRPC channels over kernel networking;
//! * the **serverless** data plane: kernel networking plus a container-based
//!   sidecar on every hop and a message broker between functions;
//! * **LIFL**'s data plane: shared-memory zero-copy hand-off with an
//!   eBPF/SKMSG control path and a per-node gateway for inter-node traffic.
//!
//! Each component (kernel network stack, gRPC channel, sidecar, broker,
//! shared-memory hop, gateway) contributes latency, CPU and buffered-memory
//! cost per hop; [`pipeline`] composes hops into the end-to-end pipelines of
//! Fig. 5 and Fig. 7, and [`cost::CostModel`] exposes everything the cluster
//! simulator needs (transfer costs, aggregation compute, cold starts).
//!
//! Calibration targets are taken from the paper itself (Fig. 7(a,b), §6.1)
//! and recorded in DESIGN.md §3.2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod cost;
pub mod gateway;
pub mod grpc;
pub mod kernel_net;
pub mod pipeline;
pub mod protocol;
pub mod sharedmem;
pub mod sidecar;

pub use cost::{update_wire_bytes, CostModel, TransferCost};
pub use pipeline::{DataPlaneKind, HopCost, Pipeline, QueuingSetup};
pub use protocol::{L7Protocol, ProcessingBreakdown, ProcessingStep, ProtocolModel};
