//! Bounded, pool-backed payload storage for the admission backlog.
//!
//! When a round is full, `try_ingest` parks the offered update's payload
//! bytes until the next round opens. Parked payloads are the one place the
//! streaming ingress could grow with client count, so [`PooledBacklog`]
//! enforces hard slot and byte budgets: a store either succeeds within the
//! caps or is refused, and every buffer is checked out of (and returned to)
//! a shared [`BufferPool`] so steady-state churn through the backlog reuses
//! the same slab instead of allocating per client.

use crate::pool::BufferPool;

/// Occupancy counters for a [`PooledBacklog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BacklogStats {
    /// Payloads currently parked.
    pub used_slots: usize,
    /// Payload bytes currently parked.
    pub used_bytes: usize,
    /// High-water mark of parked payloads.
    pub peak_slots: usize,
    /// High-water mark of parked payload bytes.
    pub peak_bytes: usize,
    /// Payloads stored over the backlog's lifetime.
    pub total_stored: u64,
    /// Store attempts refused because a budget was exhausted.
    pub total_refused: u64,
}

/// Bounded byte storage for parked update payloads, drawing buffers from a
/// shared [`BufferPool`].
///
/// The backlog only accounts bytes and slots; callers keep the returned
/// buffers (typically inside a queued-offer struct) and hand them back via
/// [`PooledBacklog::release`] when the offer is drained or dropped.
#[derive(Debug)]
pub struct PooledBacklog {
    pool: BufferPool,
    max_slots: usize,
    max_bytes: usize,
    stats: BacklogStats,
}

impl PooledBacklog {
    /// Creates a backlog with the given slot and byte budgets, recycling
    /// buffers through `pool`.
    pub fn new(pool: BufferPool, max_slots: usize, max_bytes: usize) -> PooledBacklog {
        PooledBacklog {
            pool,
            max_slots,
            max_bytes,
            stats: BacklogStats::default(),
        }
    }

    /// Whether a payload of `len` bytes fits within the remaining budgets.
    pub fn would_admit(&self, len: usize) -> bool {
        self.stats.used_slots < self.max_slots
            && self.stats.used_bytes.saturating_add(len) <= self.max_bytes
    }

    /// Copies `payload` into a pool-backed buffer and charges it against the
    /// budgets. Returns `None` (and counts a refusal) when either budget
    /// would be exceeded.
    pub fn try_store(&mut self, payload: &[u8]) -> Option<Vec<u8>> {
        if !self.would_admit(payload.len()) {
            self.stats.total_refused += 1;
            return None;
        }
        let mut buf = self.pool.checkout_bytes(payload.len());
        buf.extend_from_slice(payload);
        self.stats.used_slots += 1;
        self.stats.used_bytes += payload.len();
        self.stats.peak_slots = self.stats.peak_slots.max(self.stats.used_slots);
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.used_bytes);
        self.stats.total_stored += 1;
        Some(buf)
    }

    /// Returns a previously stored buffer to the pool and releases its
    /// budget charge.
    pub fn release(&mut self, buf: Vec<u8>) {
        self.withdraw(buf.len());
        self.pool.checkin_bytes(buf);
    }

    /// Releases the budget charge of a buffer of `len` bytes that left the
    /// backlog for good — e.g. a drained offer whose payload moved into the
    /// shared-memory object store — without returning it to the pool.
    pub fn withdraw(&mut self, len: usize) {
        self.stats.used_slots = self.stats.used_slots.saturating_sub(1);
        self.stats.used_bytes = self.stats.used_bytes.saturating_sub(len);
    }

    /// Current occupancy and lifetime counters.
    pub fn stats(&self) -> BacklogStats {
        self.stats
    }

    /// The slot budget.
    pub fn max_slots(&self) -> usize {
        self.max_slots
    }

    /// The byte budget.
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stores_within_budget_and_refuses_past_it() {
        let mut backlog = PooledBacklog::new(BufferPool::new(), 2, 100);
        let a = backlog.try_store(&[1u8; 40]).expect("fits");
        let b = backlog.try_store(&[2u8; 40]).expect("fits");
        assert_eq!(a.len(), 40);
        assert!(backlog.try_store(&[3u8; 10]).is_none(), "slot budget");
        backlog.release(a);
        assert!(backlog.try_store(&[3u8; 70]).is_none(), "byte budget");
        let c = backlog.try_store(&[3u8; 60]).expect("fits after release");
        assert_eq!(c[0], 3);
        let stats = backlog.stats();
        assert_eq!(stats.used_slots, 2);
        assert_eq!(stats.used_bytes, 100);
        assert_eq!(stats.peak_slots, 2);
        assert_eq!(stats.total_stored, 3);
        assert_eq!(stats.total_refused, 2);
        backlog.release(b);
        backlog.release(c);
        assert_eq!(backlog.stats().used_slots, 0);
        assert_eq!(backlog.stats().used_bytes, 0);
    }

    #[test]
    fn buffers_recycle_through_the_pool() {
        let pool = BufferPool::new();
        let mut backlog = PooledBacklog::new(pool.clone(), 4, 1024);
        let a = backlog.try_store(&[7u8; 64]).expect("fits");
        let ptr = a.as_ptr();
        backlog.release(a);
        assert_eq!(pool.stats().idle_buffers, 1);
        let b = backlog.try_store(&[8u8; 32]).expect("fits");
        assert_eq!(b.as_ptr(), ptr, "second store reused the slab");
        assert_eq!(pool.stats().hits, 1);
        backlog.release(b);
    }

    #[test]
    fn budgets_are_visible() {
        let backlog = PooledBacklog::new(BufferPool::new(), 3, 99);
        assert_eq!(backlog.max_slots(), 3);
        assert_eq!(backlog.max_bytes(), 99);
        assert!(backlog.would_admit(99));
        assert!(!backlog.would_admit(100));
    }
}
