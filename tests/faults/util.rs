//! Shared fixtures for the fault tier.

use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::DenseModel;
use lifl_types::ClientId;

/// A deterministic batch of `n` client updates of dimension `dim`, values in
/// roughly `[-1.9, 2.0)`, client `i` reporting `i + 1` samples.
pub fn updates(n: usize, dim: usize) -> Vec<ModelUpdate> {
    (0..n)
        .map(|i| {
            let values: Vec<f32> = (0..dim)
                .map(|d| ((i * dim + d * 7) % 101) as f32 * 0.04 - 1.9)
                .collect();
            ModelUpdate::from_client(
                ClientId::new(i as u64),
                DenseModel::from_vec(values),
                (i + 1) as u64,
            )
        })
        .collect()
}

/// Asserts two models agree bit-for-bit.
pub fn assert_bit_exact(actual: &DenseModel, expected: &DenseModel, context: &str) {
    assert_eq!(actual.dim(), expected.dim(), "{context}: dimension");
    for (i, (a, b)) in actual
        .as_slice()
        .iter()
        .zip(expected.as_slice())
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{context}: coordinate {i} diverged: {a} vs {b}"
        );
    }
}

/// Asserts two models agree to a floating-point tolerance (re-driven rounds
/// fold in a different order, so bit-exactness is not expected).
pub fn assert_close(actual: &DenseModel, expected: &DenseModel, tol: f32, context: &str) {
    assert_eq!(actual.dim(), expected.dim(), "{context}: dimension");
    for (i, (a, b)) in actual
        .as_slice()
        .iter()
        .zip(expected.as_slice())
        .enumerate()
    {
        assert!(
            (a - b).abs() <= tol,
            "{context}: coordinate {i} diverged beyond {tol}: {a} vs {b}"
        );
    }
}

/// The per-coordinate honest envelope `[min, max]` over a set of updates.
pub fn envelope(honest: &[ModelUpdate]) -> (Vec<f32>, Vec<f32>) {
    let dim = honest[0].model.dim();
    let mut lo = vec![f32::INFINITY; dim];
    let mut hi = vec![f32::NEG_INFINITY; dim];
    for update in honest {
        for (d, value) in update.model.as_slice().iter().enumerate() {
            lo[d] = lo[d].min(*value);
            hi[d] = hi[d].max(*value);
        }
    }
    (lo, hi)
}
