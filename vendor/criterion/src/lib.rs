//! Minimal offline stand-in for `criterion`.
//!
//! Supports the benchmarking surface this workspace uses:
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, and `finish`, plus [`BenchmarkId`],
//! [`Throughput`], and [`black_box`]. Each benchmark runs a short warmup then
//! `sample_size` timed samples and reports the median ns/iter to stdout. No
//! HTML reports, statistics, or comparison against saved baselines.

use std::fmt::Display;
use std::time::Instant;

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id of the form `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Values accepted as benchmark identifiers.
pub trait IntoBenchmarkId {
    /// Converts to the printable label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Throughput annotation for a benchmark (recorded, printed with results).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Measures one benchmark routine.
#[derive(Debug, Default)]
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn with_sample_size(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples_ns: Vec::new(),
        }
    }

    /// Times `routine`, recording `sample_size` samples after a short warmup.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..3 {
            black_box(routine());
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn median_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN sample"));
        sorted[sorted.len() / 2]
    }
}

fn report(label: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let median = bencher.median_ns();
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if median > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                bytes as f64 / (1024.0 * 1024.0) / (median / 1.0e9)
            )
        }
        Some(Throughput::Elements(elements)) if median > 0.0 => {
            format!("  ({:.0} elem/s)", elements as f64 / (median / 1.0e9))
        }
        _ => String::new(),
    };
    println!("bench: {label:<50} {median:>14.1} ns/iter{rate}");
}

/// Entry point mirroring criterion's `Criterion` configuration object.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.default_sample_size = samples;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::with_sample_size(self.default_sample_size);
        f(&mut bencher);
        report(&id.into_label(), &bencher, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher::with_sample_size(self.sample_size);
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id.into_label());
        report(&label, &bencher, self.throughput);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::with_sample_size(self.sample_size);
        f(&mut bencher, input);
        let label = format!("{}/{}", self.name, id.into_label());
        report(&label, &bencher, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
