//! The persisted streaming-ingress benchmark baseline.
//!
//! The bounded admission path ([`lifl_core::session::Session::try_ingest`])
//! is the front door of the streaming million-client ingress: every offered
//! update is admitted into the open round, parked in a per-leaf queue, or
//! turned away with a retry hint. This module measures that path's
//! throughput — in updates/s and payload bytes/s — at 1, 4, and 16 leaf
//! queues, and produces a schema-versioned JSON report
//! (`BENCH_ingest.json` at the repo root) that is committed, so this and
//! every future ingress PR has a before/after record.
//!
//! Two shapes per leaf count:
//!
//! - `streaming_ingest/leavesN`: the steady-state shape — offers drive the
//!   round shut the moment it fills, so nothing ever parks and the cost is
//!   pure admit-plus-fold.
//! - `overflow_park_drain/leavesN`: the burst shape — a whole round's
//!   capacity plus every queue's slot budget arrives before a single drive,
//!   so the surplus parks in the bounded queues and drains across follow-up
//!   partial (quorum) rounds.
//!
//! Regenerate with `just bench-ingest`; CI runs the `--quick` mode and
//! validates the committed file's schema (`just bench-ingest-check`).

use lifl_core::session::{SessionBuilder, Update};
use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::DenseModel;
use lifl_types::{AdmissionConfig, ClientId};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema tag of the persisted report; bump when entry names or fields
/// change so CI flags a stale committed baseline.
pub const SCHEMA: &str = "lifl.bench.ingest/v1";

/// Leaf-queue counts the ingress is measured at.
pub const LEAF_COUNTS: [usize; 3] = [1, 4, 16];

/// Updates each leaf aggregates per round (`capacity = leaves * FAN_IN`).
pub const FAN_IN: usize = 8;

/// Per-leaf-queue slot budget of the bounded admission config.
pub const QUEUE_SLOTS: usize = 4;

/// Floats per update payload (64 KiB dense payloads).
pub const DIM: usize = 16 * 1024;

/// Updates streamed per iteration of the steady-state shape (a multiple of
/// every measured round capacity, so each iteration ends drained).
pub const STREAM_UPDATES: usize = 256;

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestEntry {
    /// Stable benchmark name, e.g. `streaming_ingest/leaves4`.
    pub name: String,
    /// Leaf-queue count of the measured session.
    pub leaves: usize,
    /// Timed iterations the median is taken over.
    pub iters: u64,
    /// Updates offered per iteration.
    pub updates_per_iter: u64,
    /// Dense payload bytes offered per iteration (`4 * DIM` per update).
    pub bytes_per_iter: u64,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: u64,
    /// Derived ingress throughput in updates per second.
    pub updates_per_s: f64,
    /// Derived ingress throughput in payload GB per second.
    pub gb_per_s: f64,
}

/// A named before/after ratio derived from two entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestRatio {
    /// Stable ratio name.
    pub name: String,
    /// Per-update speedup factor (>1 means the wider fleet ingests faster).
    pub ratio: f64,
}

/// The whole persisted report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// `"full"` or `"quick"`.
    pub mode: String,
    /// Floats per update payload ([`DIM`]).
    pub dim: u64,
    /// Updates per leaf per round ([`FAN_IN`]).
    pub fan_in: u64,
    /// Per-leaf-queue slot budget ([`QUEUE_SLOTS`]).
    pub queue_slots: u64,
    /// Every measured benchmark.
    pub entries: Vec<IngestEntry>,
    /// Headline per-update scaling ratios across leaf counts.
    pub derived: Vec<IngestRatio>,
}

impl IngestReport {
    /// Looks up an entry's median by name.
    pub fn median_ns(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.median_ns)
    }

    /// Looks up a derived ratio by name.
    pub fn ratio(&self, name: &str) -> Option<f64> {
        self.derived
            .iter()
            .find(|d| d.name == name)
            .map(|d| d.ratio)
    }
}

/// The stable benchmark names every report must contain, derived from
/// [`LEAF_COUNTS`] so the generator and the CI validator cannot drift apart.
pub fn required_entry_names() -> Vec<String> {
    let mut names = Vec::new();
    for leaves in LEAF_COUNTS {
        names.push(format!("streaming_ingest/leaves{leaves}"));
        names.push(format!("overflow_park_drain/leaves{leaves}"));
    }
    names
}

/// The derived-ratio names every report must contain.
pub fn required_ratio_names() -> Vec<&'static str> {
    vec![
        "leaves16_over_leaves1_streaming",
        "leaves16_over_leaves1_overflow",
    ]
}

/// Validates a serialized report: parseable, current schema, and carrying
/// every required entry and ratio.
///
/// # Errors
/// Returns a human-readable description of the first problem found.
pub fn check_report(json: &str) -> Result<IngestReport, String> {
    let report: IngestReport =
        serde_json::from_str(json).map_err(|e| format!("unparseable ingest report: {e:?}"))?;
    if report.schema != SCHEMA {
        return Err(format!(
            "stale ingest schema {:?} (current is {SCHEMA:?}); regenerate with `just bench-ingest`",
            report.schema
        ));
    }
    for name in required_entry_names() {
        if report.median_ns(&name).is_none() {
            return Err(format!("missing entry {name:?}"));
        }
    }
    for name in required_ratio_names() {
        if report.ratio(name).is_none() {
            return Err(format!("missing derived ratio {name:?}"));
        }
    }
    Ok(report)
}

/// Median wall-clock nanoseconds of `iters` runs of `op` (after one untimed
/// warm-up run).
fn median_ns_of(iters: u64, mut op: impl FnMut()) -> u64 {
    op();
    let mut samples: Vec<u64> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            op();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2].max(1)
}

/// Deterministic dense update for one simulated client.
fn bench_update(client: u64) -> ModelUpdate {
    let values: Vec<f32> = (0..DIM)
        .map(|d| (((client as usize).wrapping_mul(29) + d * 13) % 241) as f32 * 0.009 - 1.1)
        .collect();
    ModelUpdate::from_client(
        ClientId::new(client),
        DenseModel::from_vec(values),
        client % 13 + 1,
    )
}

/// The bounded admission config every measured session uses.
fn admission() -> AdmissionConfig {
    AdmissionConfig::bounded(QUEUE_SLOTS, 1 << 20).with_quorum(1)
}

fn record(
    entries: &mut Vec<IngestEntry>,
    name: String,
    leaves: usize,
    iters: u64,
    updates_per_iter: u64,
    op: impl FnMut(),
) {
    let median = median_ns_of(iters, op);
    let bytes = updates_per_iter * DIM as u64 * 4;
    let seconds = median as f64 / 1e9;
    let entry = IngestEntry {
        name,
        leaves,
        iters,
        updates_per_iter,
        bytes_per_iter: bytes,
        median_ns: median,
        updates_per_s: updates_per_iter as f64 / seconds,
        gb_per_s: bytes as f64 / median as f64,
    };
    eprintln!(
        "  {:32} {:>12} ns/iter  {:>12.0} updates/s  {:>7.2} GB/s",
        entry.name, entry.median_ns, entry.updates_per_s, entry.gb_per_s
    );
    entries.push(entry);
}

/// Runs the whole ingest suite. `quick` bounds iterations for CI smoke
/// coverage; the committed baseline should come from a full run.
pub fn run(quick: bool) -> IngestReport {
    let iters = if quick { 2 } else { 11 };
    let mut entries = Vec::new();
    for leaves in LEAF_COUNTS {
        let capacity = leaves * FAN_IN;
        eprintln!("{leaves} leaf queue(s) (round capacity {capacity}):");

        // Steady state: drive the moment the round fills, nothing parks.
        let mut session = SessionBuilder::new()
            .two_level(leaves, FAN_IN)
            .admission(admission())
            .build()
            .expect("session");
        record(
            &mut entries,
            format!("streaming_ingest/leaves{leaves}"),
            leaves,
            iters,
            STREAM_UPDATES as u64,
            || {
                for client in 0..STREAM_UPDATES as u64 {
                    let outcome = session
                        .try_ingest(Update::Dense(bench_update(client)))
                        .expect("try_ingest");
                    assert!(outcome.is_admitted(), "steady state never parks");
                    if session.pending_updates() as usize == capacity {
                        session.drive().expect("drive");
                    }
                }
            },
        );

        // Burst: a round's capacity plus the whole queue budget arrives
        // before a single drive, then partial rounds drain the backlog.
        let offered = (capacity + leaves * QUEUE_SLOTS) as u64;
        let mut session = SessionBuilder::new()
            .two_level(leaves, FAN_IN)
            .admission(admission())
            .build()
            .expect("session");
        record(
            &mut entries,
            format!("overflow_park_drain/leaves{leaves}"),
            leaves,
            iters,
            offered,
            || {
                for client in 0..offered {
                    let outcome = session
                        .try_ingest(Update::Dense(bench_update(client)))
                        .expect("try_ingest");
                    assert!(!outcome.is_rejected(), "burst fits the queue budget");
                }
                while session.pending_updates() > 0 {
                    session.drive().expect("drive");
                }
            },
        );
    }

    // Per-update scaling: ns/update at 1 leaf over ns/update at 16 leaves.
    let ns_per_update = |name: &str| -> f64 {
        let entry = entries
            .iter()
            .find(|e| e.name == name)
            .expect("entry recorded above");
        entry.median_ns as f64 / entry.updates_per_iter as f64
    };
    let derived = vec![
        IngestRatio {
            name: "leaves16_over_leaves1_streaming".to_string(),
            ratio: ns_per_update("streaming_ingest/leaves1")
                / ns_per_update("streaming_ingest/leaves16"),
        },
        IngestRatio {
            name: "leaves16_over_leaves1_overflow".to_string(),
            ratio: ns_per_update("overflow_park_drain/leaves1")
                / ns_per_update("overflow_park_drain/leaves16"),
        },
    ];
    IngestReport {
        schema: SCHEMA.to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        dim: DIM as u64,
        fan_in: FAN_IN as u64,
        queue_slots: QUEUE_SLOTS as u64,
        entries,
        derived,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> IngestReport {
        // A structurally complete report with fabricated numbers, for schema
        // tests (running the real suite at 64 KiB payloads is too slow here).
        IngestReport {
            schema: SCHEMA.to_string(),
            mode: "quick".to_string(),
            dim: DIM as u64,
            fan_in: FAN_IN as u64,
            queue_slots: QUEUE_SLOTS as u64,
            entries: required_entry_names()
                .into_iter()
                .map(|name| IngestEntry {
                    name,
                    leaves: 1,
                    iters: 1,
                    updates_per_iter: 8,
                    bytes_per_iter: 8 * DIM as u64 * 4,
                    median_ns: 100,
                    updates_per_s: 1.0,
                    gb_per_s: 1.0,
                })
                .collect(),
            derived: required_ratio_names()
                .into_iter()
                .map(|name| IngestRatio {
                    name: name.to_string(),
                    ratio: 2.0,
                })
                .collect(),
        }
    }

    #[test]
    fn report_roundtrips_and_passes_check() {
        let report = tiny_report();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back = check_report(&json).expect("valid report");
        assert_eq!(back, report);
        assert_eq!(back.ratio("leaves16_over_leaves1_streaming"), Some(2.0));
        assert_eq!(back.median_ns("streaming_ingest/leaves1"), Some(100));
    }

    #[test]
    fn stale_schema_is_rejected() {
        let mut report = tiny_report();
        report.schema = "lifl.bench.ingest/v0".to_string();
        let json = serde_json::to_string(&report).unwrap();
        let err = check_report(&json).unwrap_err();
        assert!(err.contains("stale"), "{err}");
    }

    #[test]
    fn missing_entries_and_ratios_are_rejected() {
        let mut report = tiny_report();
        report
            .entries
            .retain(|e| e.name != "streaming_ingest/leaves4");
        let json = serde_json::to_string(&report).unwrap();
        assert!(check_report(&json).is_err());
        let mut report = tiny_report();
        report.derived.clear();
        let json = serde_json::to_string(&report).unwrap();
        assert!(check_report(&json).is_err());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(check_report("not json").is_err());
    }

    #[test]
    fn quick_run_measures_every_required_entry() {
        // The real path end to end at the smallest leaf count only would not
        // exercise the validator; run the quick suite and check it.
        let report = run(true);
        let json = serde_json::to_string(&report).unwrap();
        let back = check_report(&json).expect("quick report is complete");
        assert_eq!(back.mode, "quick");
        for entry in &back.entries {
            assert!(entry.median_ns >= 1);
            assert!(entry.updates_per_s > 0.0);
        }
    }
}
