//! Function chains and the cascading cold-start effect (§2.3).
//!
//! Hierarchical aggregation on a serverless platform is a *function chain*:
//! leaf aggregators feed middle aggregators feed the top aggregator. With a
//! purely reactive autoscaler, the platform only notices that the next stage
//! needs an instance when the previous stage tries to send to it, so cold
//! starts serialise along the chain — the "cascading effect" (Park et al.,
//! 2021b) the paper cites as a motivation for hierarchy-aware planning and
//! runtime reuse (§5.2, §5.3).
//!
//! [`FunctionChain`] models a linear chain of stages, each backed by an
//! [`InstancePool`], and computes the end-to-end readiness time under
//! reactive scaling (cold starts serialise) versus pre-planned scaling
//! (every stage is started concurrently before traffic arrives).

use crate::function::FunctionSpec;
use crate::instance::InstancePool;
use lifl_dataplane::cost::StartupCost;
use lifl_types::{SimDuration, SimTime, SystemKind};

/// How the chain's instances are brought up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainScaling {
    /// Each stage is started only when the previous stage produces output
    /// (the reactive behaviour of threshold autoscalers).
    Reactive,
    /// All stages are started concurrently before traffic arrives
    /// (what LIFL's hierarchy planner and runtime reuse achieve).
    PrePlanned,
}

/// Per-stage readiness report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageReadiness {
    /// Index of the stage within the chain (0 = entry stage).
    pub stage: usize,
    /// When the stage's instance is ready to process.
    pub ready_at: SimTime,
    /// Whether bringing the stage up required a cold start.
    pub cold_start: bool,
}

/// The result of scaling a chain for one wave of traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainReadiness {
    /// Scaling mode used.
    pub scaling: ChainScaling,
    /// Per-stage readiness, in chain order.
    pub stages: Vec<StageReadiness>,
    /// Time at which the whole chain can process end to end.
    pub chain_ready_at: SimTime,
    /// Total start-up CPU consumed across stages.
    pub startup_cpu: SimDuration,
}

impl ChainReadiness {
    /// Number of cold starts incurred.
    pub fn cold_starts(&self) -> usize {
        self.stages.iter().filter(|s| s.cold_start).count()
    }
}

/// A linear chain of serverless function stages.
#[derive(Debug)]
pub struct FunctionChain {
    stages: Vec<InstancePool>,
}

impl FunctionChain {
    /// Builds a chain of `depth` aggregator stages on `system`'s platform,
    /// all sharing the same start-up cost model.
    pub fn aggregation_chain(system: SystemKind, depth: usize, startup: StartupCost) -> Self {
        let stages = (0..depth.max(1))
            .map(|level| {
                let mut spec = FunctionSpec::aggregator(system);
                spec.name = format!("aggregator-level-{level}");
                InstancePool::new(spec, startup)
            })
            .collect();
        FunctionChain { stages }
    }

    /// Number of stages in the chain.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// Access to the per-stage pools (for inspecting cold-start counters).
    pub fn stages(&self) -> &[InstancePool] {
        &self.stages
    }

    /// Scales the chain for a wave of traffic arriving at `now` and returns
    /// when each stage — and the chain as a whole — becomes ready.
    ///
    /// Under [`ChainScaling::Reactive`], stage `k + 1` is only acquired once
    /// stage `k` is ready, so cold-start delays accumulate. Under
    /// [`ChainScaling::PrePlanned`], every stage is acquired at `now`, so the
    /// chain is ready when the slowest single stage is.
    pub fn scale_for_traffic(&mut self, now: SimTime, scaling: ChainScaling) -> ChainReadiness {
        let mut stages = Vec::with_capacity(self.stages.len());
        let mut startup_cpu = SimDuration::ZERO;
        let mut chain_ready_at = now;
        match scaling {
            ChainScaling::Reactive => {
                let mut trigger_at = now;
                for (idx, pool) in self.stages.iter_mut().enumerate() {
                    let outcome = pool.acquire(trigger_at);
                    startup_cpu += outcome.startup_cpu;
                    stages.push(StageReadiness {
                        stage: idx,
                        ready_at: outcome.ready_at,
                        cold_start: outcome.cold_start,
                    });
                    // The next stage is only provoked once this one is ready.
                    trigger_at = outcome.ready_at;
                    chain_ready_at = outcome.ready_at;
                }
            }
            ChainScaling::PrePlanned => {
                for (idx, pool) in self.stages.iter_mut().enumerate() {
                    let outcome = pool.acquire(now);
                    startup_cpu += outcome.startup_cpu;
                    chain_ready_at = chain_ready_at.max(outcome.ready_at);
                    stages.push(StageReadiness {
                        stage: idx,
                        ready_at: outcome.ready_at,
                        cold_start: outcome.cold_start,
                    });
                }
            }
        }
        ChainReadiness {
            scaling,
            stages,
            chain_ready_at,
            startup_cpu,
        }
    }

    /// Releases every stage's instance back to its warm pool at `now`
    /// (e.g. at the end of a round), so the next wave can reuse them.
    pub fn release_all(&mut self, now: SimTime) {
        for pool in &mut self.stages {
            // Release every live instance; the pool tracks them internally by
            // re-acquiring warm instances on the next wave.
            for id in 0..pool.live_instances() as u64 {
                pool.release(lifl_types::InstanceId::new(id), now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lifl_dataplane::CostModel;

    fn startup(system: SystemKind) -> StartupCost {
        CostModel::paper_calibrated().startup(system)
    }

    #[test]
    fn reactive_cold_starts_cascade() {
        let mut chain = FunctionChain::aggregation_chain(
            SystemKind::Serverless,
            3,
            startup(SystemKind::Serverless),
        );
        let reactive = chain.scale_for_traffic(SimTime::ZERO, ChainScaling::Reactive);
        assert_eq!(reactive.cold_starts(), 3);
        // Each stage becomes ready strictly after the previous one.
        for pair in reactive.stages.windows(2) {
            assert!(pair[1].ready_at > pair[0].ready_at);
        }
        let single_stage_delay = reactive.stages[0].ready_at.as_secs();
        assert!(
            reactive.chain_ready_at.as_secs() >= 2.5 * single_stage_delay,
            "cascade should be ~3x one cold start: {} vs {}",
            reactive.chain_ready_at.as_secs(),
            single_stage_delay
        );
    }

    #[test]
    fn preplanned_chain_ready_after_one_cold_start() {
        let mut reactive_chain = FunctionChain::aggregation_chain(
            SystemKind::Serverless,
            4,
            startup(SystemKind::Serverless),
        );
        let mut planned_chain = FunctionChain::aggregation_chain(
            SystemKind::Serverless,
            4,
            startup(SystemKind::Serverless),
        );
        let reactive = reactive_chain.scale_for_traffic(SimTime::ZERO, ChainScaling::Reactive);
        let planned = planned_chain.scale_for_traffic(SimTime::ZERO, ChainScaling::PrePlanned);
        assert_eq!(planned.cold_starts(), 4);
        assert!(
            planned.chain_ready_at < reactive.chain_ready_at,
            "pre-planning should beat the cascade: {} vs {}",
            planned.chain_ready_at.as_secs(),
            reactive.chain_ready_at.as_secs()
        );
        // Pre-planned readiness equals the slowest single stage.
        let slowest = planned
            .stages
            .iter()
            .map(|s| s.ready_at.as_secs())
            .fold(0.0, f64::max);
        assert!((planned.chain_ready_at.as_secs() - slowest).abs() < 1e-9);
    }

    #[test]
    fn warm_chain_has_no_cold_starts_on_second_wave() {
        let mut chain =
            FunctionChain::aggregation_chain(SystemKind::Lifl, 3, startup(SystemKind::Lifl));
        let first = chain.scale_for_traffic(SimTime::ZERO, ChainScaling::PrePlanned);
        assert_eq!(first.cold_starts(), 3);
        chain.release_all(SimTime::from_secs(20.0));
        let second = chain.scale_for_traffic(SimTime::from_secs(30.0), ChainScaling::PrePlanned);
        assert_eq!(
            second.cold_starts(),
            0,
            "second wave should reuse warm instances"
        );
        // Readiness latency (relative to the wave's arrival) shrinks on reuse.
        let first_latency = first.chain_ready_at.as_secs();
        let second_latency = second.chain_ready_at.as_secs() - 30.0;
        assert!(
            second_latency <= first_latency,
            "{second_latency} vs {first_latency}"
        );
        assert_eq!(second.startup_cpu, SimDuration::ZERO);
    }

    #[test]
    fn lifl_runtimes_start_faster_than_knative_containers() {
        let mut sl = FunctionChain::aggregation_chain(
            SystemKind::Serverless,
            3,
            startup(SystemKind::Serverless),
        );
        let mut lifl =
            FunctionChain::aggregation_chain(SystemKind::Lifl, 3, startup(SystemKind::Lifl));
        let sl_ready = sl.scale_for_traffic(SimTime::ZERO, ChainScaling::Reactive);
        let lifl_ready = lifl.scale_for_traffic(SimTime::ZERO, ChainScaling::Reactive);
        assert!(lifl_ready.chain_ready_at < sl_ready.chain_ready_at);
        assert!(lifl_ready.startup_cpu < sl_ready.startup_cpu);
    }

    #[test]
    fn chain_depth_is_at_least_one() {
        let chain =
            FunctionChain::aggregation_chain(SystemKind::Lifl, 0, startup(SystemKind::Lifl));
        assert_eq!(chain.depth(), 1);
        assert_eq!(chain.stages().len(), 1);
    }
}
