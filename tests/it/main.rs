//! Entry point binding the eleven integration suites into one test binary.

mod algorithms;
mod codec;
mod end_to_end;
mod extensions;
mod failure_injection;
mod placement_routing;
mod platform_vs_baselines;
mod runtime_inprocess;
mod serverless_substrate;
mod session;
mod workspace_smoke;
