//! Regenerates Fig. 4 (hierarchical aggregation on kernel networking).
fn main() {
    let result = lifl_experiments::fig4::run();
    println!("{}", lifl_experiments::fig4::format(&result));
    println!("{}", lifl_experiments::report::to_json(&result));
}
