//! Runs every experiment in sequence (the source of EXPERIMENTS.md numbers).
fn main() {
    println!("==== Fig. 4 ====");
    println!(
        "{}",
        lifl_experiments::fig4::format(&lifl_experiments::fig4::run())
    );
    println!("==== Fig. 7 ====");
    println!(
        "{}",
        lifl_experiments::fig7::format(&lifl_experiments::fig7::run())
    );
    println!("==== Fig. 8 ====");
    println!(
        "{}",
        lifl_experiments::fig8::format(&lifl_experiments::fig8::run())
    );
    println!("==== Ablations (EWMA alpha, leaf fan-in, placement policy) ====");
    println!(
        "{}",
        lifl_experiments::ablation::format(&lifl_experiments::ablation::run())
    );
    println!("==== Fig. 11 / future work: asynchronous FL ====");
    println!(
        "{}",
        lifl_experiments::fig11_async::format(&lifl_experiments::fig11_async::run())
    );
    println!("==== Fig. 9 / Fig. 10 (ResNet-18, 20 rounds) ====");
    let c18 = lifl_experiments::fig9_fig10::run_workload(lifl_types::ModelKind::ResNet18, 20, 50.0);
    println!("{}", lifl_experiments::fig9_fig10::format(&c18));
    println!("{}", lifl_experiments::fig9_fig10::format_timeseries(&c18));
    println!("==== Fig. 9 / Fig. 10 (ResNet-152, 20 rounds) ====");
    let c152 =
        lifl_experiments::fig9_fig10::run_workload(lifl_types::ModelKind::ResNet152, 20, 50.0);
    println!("{}", lifl_experiments::fig9_fig10::format(&c152));
    println!("{}", lifl_experiments::fig9_fig10::format_timeseries(&c152));
    println!("==== Fig. 13 ====");
    println!(
        "{}",
        lifl_experiments::fig13::format(&lifl_experiments::fig13::run())
    );
    println!("==== Codec ablation (bytes-on-wire x time-to-accuracy) ====");
    println!(
        "{}",
        lifl_experiments::fig_codec::format(&lifl_experiments::fig_codec::run())
    );
    println!("==== Orchestration overhead ====");
    println!(
        "{}",
        lifl_experiments::orchestration_overhead::format(
            &lifl_experiments::orchestration_overhead::run()
        )
    );
}
