//! A slab of reusable scratch buffers for the aggregation hot path.
//!
//! Every interior aggregator in LIFL decodes, folds and re-encodes model
//! updates continuously; allocating a fresh model-sized `Vec` per update puts
//! the allocator on the Recv+Agg critical path (§5.4). [`BufferPool`] keeps
//! checked-in `Vec<f32>` / `Vec<u8>` buffers alive between uses so a
//! steady-state round performs **zero** model-sized heap allocations after
//! warm-up: the codec draws its encode body from the pool, `ErrorFeedback`
//! draws its compensation scratch, and decode sites draw their dequantization
//! scratch.
//!
//! The pool is deliberately simple — a LIFO stack per element type, behind one
//! mutex, shared by `Clone` (an `Arc` bump) like [`crate::ObjectStore`]. A
//! checkout *moves* the buffer out (no lifetime coupling to the pool), so a
//! buffer can be embedded in an `EncodedUpdate`, shipped across a queue, and
//! checked back in by whoever retires it.

use parking_lot::Mutex;
use std::sync::Arc;

/// Counters describing a [`BufferPool`]'s behaviour over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Checkouts served from an already-pooled buffer (no heap allocation).
    pub hits: u64,
    /// Checkouts that had to allocate (pool empty or every buffer too small).
    pub misses: u64,
    /// Buffers currently checked in and idle.
    pub idle_buffers: usize,
    /// High-water mark of idle buffers (the slab's resident footprint).
    pub peak_idle_buffers: usize,
    /// Capacity bytes currently resident in idle buffers.
    pub idle_bytes: u64,
    /// High-water mark of resident idle capacity bytes.
    pub peak_idle_bytes: u64,
}

impl PoolStats {
    /// Fraction of checkouts that avoided a heap allocation.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

#[derive(Default)]
struct PoolInner {
    f32s: Vec<Vec<f32>>,
    bytes: Vec<Vec<u8>>,
    u32s: Vec<Vec<u32>>,
    stats: PoolStats,
}

impl PoolInner {
    fn recount(&mut self) {
        self.stats.idle_buffers = self.f32s.len() + self.bytes.len() + self.u32s.len();
        self.stats.idle_bytes = self
            .f32s
            .iter()
            .map(|b| b.capacity() as u64 * 4)
            .sum::<u64>()
            + self.bytes.iter().map(|b| b.capacity() as u64).sum::<u64>()
            + self
                .u32s
                .iter()
                .map(|b| b.capacity() as u64 * 4)
                .sum::<u64>();
        self.stats.peak_idle_buffers = self.stats.peak_idle_buffers.max(self.stats.idle_buffers);
        self.stats.peak_idle_bytes = self.stats.peak_idle_bytes.max(self.stats.idle_bytes);
    }
}

/// A shared checkout/checkin pool of `Vec<f32>` and `Vec<u8>` scratch buffers.
///
/// Cloning the pool shares the same slab (an `Arc` bump), so a codec, an
/// error-feedback encoder and an aggregator runtime can all recycle through
/// one slab.
#[derive(Clone, Default)]
pub struct BufferPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("BufferPool")
            .field("idle_buffers", &stats.idle_buffers)
            .field("idle_bytes", &stats.idle_bytes)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .finish()
    }
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out an `f32` buffer of exactly `len` elements (contents
    /// unspecified but initialised). Reuses a pooled buffer when one with
    /// sufficient capacity exists; allocates otherwise.
    pub fn checkout_f32(&self, len: usize) -> Vec<f32> {
        let mut inner = self.inner.lock();
        let slot = inner.f32s.iter().rposition(|b| b.capacity() >= len);
        let mut buf = match slot {
            Some(i) => {
                inner.stats.hits += 1;
                inner.f32s.swap_remove(i)
            }
            None => {
                inner.stats.misses += 1;
                Vec::with_capacity(len)
            }
        };
        inner.recount();
        drop(inner);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns an `f32` buffer to the pool for reuse.
    pub fn checkin_f32(&self, buf: Vec<f32>) {
        let mut inner = self.inner.lock();
        inner.f32s.push(buf);
        inner.recount();
    }

    /// Checks out an empty byte buffer with at least `capacity` bytes of
    /// capacity. Reuses a pooled buffer when one is large enough; allocates
    /// otherwise.
    pub fn checkout_bytes(&self, capacity: usize) -> Vec<u8> {
        let mut inner = self.inner.lock();
        let slot = inner.bytes.iter().rposition(|b| b.capacity() >= capacity);
        let mut buf = match slot {
            Some(i) => {
                inner.stats.hits += 1;
                inner.bytes.swap_remove(i)
            }
            None => {
                inner.stats.misses += 1;
                Vec::with_capacity(capacity)
            }
        };
        inner.recount();
        drop(inner);
        buf.clear();
        buf
    }

    /// Returns a byte buffer to the pool for reuse.
    pub fn checkin_bytes(&self, buf: Vec<u8>) {
        let mut inner = self.inner.lock();
        inner.bytes.push(buf);
        inner.recount();
    }

    /// Checks out an empty `u32` buffer with at least `capacity` elements of
    /// capacity (index scratch for the top-k encoder). Reuses a pooled buffer
    /// when one is large enough; allocates otherwise.
    pub fn checkout_u32(&self, capacity: usize) -> Vec<u32> {
        let mut inner = self.inner.lock();
        let slot = inner.u32s.iter().rposition(|b| b.capacity() >= capacity);
        let mut buf = match slot {
            Some(i) => {
                inner.stats.hits += 1;
                inner.u32s.swap_remove(i)
            }
            None => {
                inner.stats.misses += 1;
                Vec::with_capacity(capacity)
            }
        };
        inner.recount();
        drop(inner);
        buf.clear();
        buf
    }

    /// Returns a `u32` buffer to the pool for reuse.
    pub fn checkin_u32(&self, buf: Vec<u32>) {
        let mut inner = self.inner.lock();
        inner.u32s.push(buf);
        inner.recount();
    }

    /// Drops every idle buffer (e.g. when the model dimension changes and the
    /// resident capacities no longer fit the workload).
    pub fn shrink(&self) {
        let mut inner = self.inner.lock();
        inner.f32s.clear();
        inner.bytes.clear();
        inner.u32s.clear();
        inner.recount();
    }

    /// Current pool statistics.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_checked_in_buffers() {
        let pool = BufferPool::new();
        let buf = pool.checkout_f32(128);
        assert_eq!(buf.len(), 128);
        assert_eq!(pool.stats().misses, 1);
        let ptr = buf.as_ptr();
        pool.checkin_f32(buf);
        assert_eq!(pool.stats().idle_buffers, 1);
        let again = pool.checkout_f32(64);
        // Same backing allocation came back (capacity 128 >= 64).
        assert_eq!(again.as_ptr(), ptr);
        assert_eq!(again.len(), 64);
        let stats = pool.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.idle_buffers, 0);
    }

    #[test]
    fn undersized_buffers_are_not_reused_for_larger_requests() {
        let pool = BufferPool::new();
        pool.checkin_f32(Vec::with_capacity(8));
        let big = pool.checkout_f32(1024);
        assert_eq!(big.len(), 1024);
        let stats = pool.stats();
        assert_eq!(stats.misses, 1);
        // The small buffer stays pooled for a later small request.
        assert_eq!(stats.idle_buffers, 1);
    }

    #[test]
    fn byte_checkout_is_empty_with_capacity() {
        let pool = BufferPool::new();
        let mut buf = pool.checkout_bytes(256);
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 256);
        buf.extend_from_slice(&[1, 2, 3]);
        pool.checkin_bytes(buf);
        let reused = pool.checkout_bytes(10);
        assert!(reused.is_empty(), "checked-out byte buffers arrive cleared");
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn stats_track_high_water_marks() {
        let pool = BufferPool::new();
        pool.checkin_f32(vec![0.0; 100]);
        pool.checkin_bytes(vec![0u8; 50]);
        let stats = pool.stats();
        assert_eq!(stats.idle_buffers, 2);
        assert_eq!(stats.peak_idle_buffers, 2);
        assert!(stats.idle_bytes >= 450);
        let _ = pool.checkout_bytes(1);
        let _ = pool.checkout_f32(1);
        let after = pool.stats();
        assert_eq!(after.idle_buffers, 0);
        assert_eq!(after.peak_idle_buffers, 2);
        assert!(after.peak_idle_bytes >= 450);
        assert!((after.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shrink_empties_the_slab() {
        let pool = BufferPool::new();
        pool.checkin_f32(vec![0.0; 10]);
        pool.shrink();
        assert_eq!(pool.stats().idle_buffers, 0);
        assert_eq!(pool.stats().idle_bytes, 0);
    }

    #[test]
    fn u32_checkout_reuses_and_clears() {
        let pool = BufferPool::new();
        let mut idx = pool.checkout_u32(64);
        assert!(idx.is_empty());
        assert!(idx.capacity() >= 64);
        idx.extend(0..64u32);
        let ptr = idx.as_ptr();
        pool.checkin_u32(idx);
        assert_eq!(pool.stats().idle_buffers, 1);
        let again = pool.checkout_u32(32);
        assert_eq!(again.as_ptr(), ptr, "same slab came back");
        assert!(again.is_empty(), "checked-out u32 buffers arrive cleared");
        assert_eq!(pool.stats().hits, 1);
        pool.checkin_u32(again);
        pool.shrink();
        assert_eq!(pool.stats().idle_buffers, 0);
    }

    #[test]
    fn pool_is_clone_shared() {
        let pool = BufferPool::new();
        let alias = pool.clone();
        pool.checkin_bytes(vec![0u8; 16]);
        assert_eq!(alias.stats().idle_buffers, 1);
        let _ = alias.checkout_bytes(4);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn empty_pool_hit_rate_is_zero() {
        assert_eq!(BufferPool::new().stats().hit_rate(), 0.0);
    }
}
