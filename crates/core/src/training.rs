//! The backend-generic multi-round FL training driver: one training loop
//! that runs over any [`Ingest`] aggregation backend — a single-process
//! [`Session`](crate::session::Session) tree or a multi-node federated
//! [`Cluster`](crate::cluster::Cluster) — with identical results.
//!
//! The algorithm-level [`FlDriver`](lifl_fl::FlDriver) folds client updates
//! through a flat in-loop accumulator; this driver instead pushes every
//! locally trained update through the backend's polymorphic ingress
//! ([`Ingest::ingest_update`]) and lets the backend aggregate the round over
//! its tree — stores, codecs, per-client error feedback and (for a cluster)
//! priced inter-node hops all engaged. Because both backends apply the same
//! ingress rules with the same seeds, the driver's loss/accuracy curve is
//! **bit-exact** across backends for every [`CodecKind`] × shard count
//! (enforced by the `tests/it/driver.rs` tier), and matches the flat
//! [`FlDriver`](lifl_fl::FlDriver) under a lossless codec.

use lifl_fl::dataset::FederatedDataset;
use lifl_fl::metrics::accuracy_percent;
use lifl_fl::model::DenseModel;
use lifl_fl::population::Population;
use lifl_fl::trainer::{LocalTrainer, TrainerConfig};
use lifl_fl::{Ingest, Update};
use lifl_simcore::SimRng;
use lifl_types::{CodecKind, LiflError, Result};

/// Configuration of the backend-generic training driver.
///
/// The wire codec is *not* configured here: it is a property of the backend
/// (set when the session or cluster was built) and is reported through
/// [`Ingest::ingress_codec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// Local-training configuration.
    pub trainer: TrainerConfig,
    /// Number of rounds [`TrainingDriver::run_all`] runs.
    pub rounds: usize,
    /// Evaluate accuracy every this many rounds (1 = every round).
    pub eval_every: usize,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            trainer: TrainerConfig::default(),
            rounds: 50,
            eval_every: 1,
        }
    }
}

/// The outcome of one driven round.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingRound {
    /// Round index (starting at 1).
    pub round: usize,
    /// Client updates the backend aggregated.
    pub updates: u64,
    /// Test accuracy after the round, if evaluated.
    pub accuracy: Option<f64>,
    /// Average local training loss reported by the participating clients.
    pub train_loss: f64,
    /// Data-plane payload bytes the round's ingests occupied in wire form.
    pub ingress_wire_bytes: u64,
}

/// Runs synchronous multi-round FedAvg over any [`Ingest`] backend.
///
/// ```
/// use lifl_core::session::SessionBuilder;
/// use lifl_core::training::{TrainingConfig, TrainingDriver};
/// use lifl_fl::client::ClientAvailability;
/// use lifl_fl::dataset::{DatasetConfig, FederatedDataset};
/// use lifl_fl::population::{Population, PopulationConfig};
/// use lifl_simcore::SimRng;
/// use lifl_types::Topology;
///
/// let mut rng = SimRng::from_seed(7);
/// let dataset = FederatedDataset::generate(
///     DatasetConfig {
///         num_clients: 16,
///         num_features: 8,
///         num_classes: 4,
///         mean_samples_per_client: 20,
///         dirichlet_alpha: 0.5,
///         test_samples: 80,
///         noise_std: 0.4,
///     },
///     &mut rng,
/// );
/// let population = Population::generate(
///     PopulationConfig {
///         total_clients: 16,
///         active_per_round: 8,
///         availability: ClientAvailability::AlwaysOn,
///         mean_samples: 20,
///         speed_spread: 0.3,
///     },
///     &mut rng,
/// );
/// // An 8-update session tree: each round's 8 participants fill it exactly.
/// let session = SessionBuilder::new()
///     .topology(Topology::new(vec![4, 2]).unwrap())
///     .build()
///     .unwrap();
/// let mut driver =
///     TrainingDriver::new(session, dataset, population, TrainingConfig::default());
/// let outcome = driver.run_round(&mut rng).unwrap();
/// assert_eq!(outcome.round, 1);
/// assert_eq!(outcome.updates, 8);
/// ```
#[derive(Debug)]
pub struct TrainingDriver<B: Ingest> {
    backend: B,
    dataset: FederatedDataset,
    population: Population,
    trainer: LocalTrainer,
    config: TrainingConfig,
    global: DenseModel,
    history: Vec<TrainingRound>,
}

impl<B: Ingest> TrainingDriver<B> {
    /// Creates a driver over `backend` with a zero-initialised global model.
    ///
    /// The population's `active_per_round` must equal the backend's
    /// [`Ingest::round_capacity`] for rounds to drive (checked per round, so
    /// availability dynamics that under-select surface as errors, not
    /// silently skewed aggregates).
    pub fn new(
        backend: B,
        dataset: FederatedDataset,
        population: Population,
        config: TrainingConfig,
    ) -> Self {
        let trainer = LocalTrainer::new(dataset.num_features, dataset.num_classes, config.trainer);
        let global = dataset.initial_model();
        TrainingDriver {
            backend,
            dataset,
            population,
            trainer,
            config,
            global,
            history: Vec::new(),
        }
    }

    /// The aggregation backend the driver ingests into.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the backend (e.g. to feed a cluster's placement
    /// policy out-of-band load observations between rounds).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The wire codec the backend applies at its ingress.
    pub fn codec(&self) -> CodecKind {
        self.backend.ingress_codec()
    }

    /// The current global model.
    pub fn global_model(&self) -> &DenseModel {
        &self.global
    }

    /// Completed round outcomes.
    pub fn history(&self) -> &[TrainingRound] {
        &self.history
    }

    /// Current test accuracy of the global model.
    pub fn evaluate(&self) -> f64 {
        accuracy_percent(&self.trainer, &self.global, self.dataset.test_set())
    }

    /// The accuracy-versus-round curve (round index, accuracy percent).
    pub fn accuracy_curve(&self) -> Vec<(usize, f64)> {
        self.history
            .iter()
            .filter_map(|r| r.accuracy.map(|a| (r.round, a)))
            .collect()
    }

    /// Runs one synchronous round: select participants, train each locally,
    /// ingest every update dense through the backend's ingress (the backend
    /// encodes at ingress under a lossy codec, with per-client error
    /// feedback), aggregate the backend's tree, adopt the global aggregate
    /// and optionally evaluate.
    ///
    /// # Errors
    /// Fails if the selection does not exactly fill the backend's tree, or
    /// on any backend ingest/aggregation error. The backend's round is
    /// discarded on failure, so the driver stays reusable.
    pub fn run_round(&mut self, rng: &mut SimRng) -> Result<TrainingRound> {
        let round = self.history.len() + 1;
        let participants = self.population.select_round(rng);
        let capacity = self.backend.round_capacity();
        if participants.len() != capacity {
            return Err(LiflError::InvalidConfig(format!(
                "round selected {} participants but the backend tree \
                 aggregates exactly {capacity}",
                participants.len()
            )));
        }
        let mut loss_sum = 0.0;
        for client in &participants {
            let shard = self.dataset.shard(client.id);
            let (local, loss) = self.trainer.train(&self.global, shard, rng);
            loss_sum += loss;
            let samples = shard.len().max(1) as u64;
            if let Err(error) = self
                .backend
                .ingest_update(Update::dense(client.id, local, samples))
            {
                self.backend.discard_round();
                return Err(error);
            }
        }
        let aggregate = self.backend.aggregate_round()?;
        self.global = aggregate.update.model;
        let accuracy = if round.is_multiple_of(self.config.eval_every.max(1)) {
            Some(self.evaluate())
        } else {
            None
        };
        let outcome = TrainingRound {
            round,
            updates: aggregate.updates_ingested,
            accuracy,
            train_loss: loss_sum / participants.len().max(1) as f64,
            ingress_wire_bytes: aggregate.ingress_wire_bytes,
        };
        self.history.push(outcome.clone());
        Ok(outcome)
    }

    /// Runs all configured rounds and returns the history.
    ///
    /// # Errors
    /// Stops at and returns the first failing round (completed rounds stay
    /// in [`TrainingDriver::history`]).
    pub fn run_all(&mut self, rng: &mut SimRng) -> Result<Vec<TrainingRound>> {
        for _ in 0..self.config.rounds {
            self.run_round(rng)?;
        }
        Ok(self.history.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Session, SessionBuilder};
    use lifl_fl::client::ClientAvailability;
    use lifl_fl::dataset::DatasetConfig;
    use lifl_fl::population::PopulationConfig;
    use lifl_types::Topology;

    fn fixtures(seed: u64) -> (FederatedDataset, Population, SimRng) {
        let mut rng = SimRng::from_seed(seed);
        let dataset = FederatedDataset::generate(
            DatasetConfig {
                num_clients: 24,
                num_features: 12,
                num_classes: 6,
                mean_samples_per_client: 40,
                dirichlet_alpha: 0.5,
                test_samples: 300,
                noise_std: 0.4,
            },
            &mut rng,
        );
        let population = Population::generate(
            PopulationConfig {
                total_clients: 24,
                active_per_round: 8,
                availability: ClientAvailability::AlwaysOn,
                mean_samples: 40,
                speed_spread: 0.3,
            },
            &mut rng,
        );
        (dataset, population, rng)
    }

    fn session(codec: lifl_types::CodecKind) -> Session {
        SessionBuilder::new()
            .topology(Topology::new(vec![2, 2, 2]).unwrap())
            .codec(codec)
            .build()
            .unwrap()
    }

    #[test]
    fn driver_over_a_session_learns() {
        let (dataset, population, mut rng) = fixtures(42);
        let mut driver = TrainingDriver::new(
            session(lifl_types::CodecKind::Identity),
            dataset,
            population,
            TrainingConfig {
                rounds: 12,
                ..TrainingConfig::default()
            },
        );
        let initial = driver.evaluate();
        let history = driver.run_all(&mut rng).unwrap();
        assert_eq!(history.len(), 12);
        let final_acc = driver.evaluate();
        assert!(
            final_acc > initial + 10.0,
            "driver should learn noticeably: {initial} -> {final_acc}"
        );
        assert!(history.iter().all(|r| r.updates == 8));
        assert!(history.iter().all(|r| r.ingress_wire_bytes > 0));
        assert_eq!(driver.accuracy_curve().len(), 12);
    }

    #[test]
    fn capacity_mismatch_is_an_error_and_keeps_the_driver_reusable() {
        let (dataset, _, mut rng) = fixtures(7);
        // 10 active participants can never fill an 8-update tree.
        let population = Population::generate(
            PopulationConfig {
                total_clients: 24,
                active_per_round: 10,
                availability: ClientAvailability::AlwaysOn,
                mean_samples: 40,
                speed_spread: 0.3,
            },
            &mut rng,
        );
        let mut driver = TrainingDriver::new(
            session(lifl_types::CodecKind::Identity),
            dataset,
            population,
            TrainingConfig::default(),
        );
        assert!(driver.run_round(&mut rng).is_err());
        assert!(driver.history().is_empty());
        assert_eq!(driver.backend().pending_updates(), 0);
    }
}
