//! Sharded, cache-blocked parallel FedAvg.
//!
//! [`CumulativeFedAvg`] folds one update at a time, streaming the whole
//! accumulator through the cache hierarchy once per update — at ResNet-152
//! scale that is ~700 MB of memory traffic per fold. [`ShardedFedAvg`]
//! restructures a *batch* fold along two axes:
//!
//! * **Cache blocking** — the parameter vector is walked in L1-sized blocks,
//!   and every update in the batch is folded into a block before moving on.
//!   The accumulator is then read and written once per batch instead of once
//!   per update, cutting memory traffic from `(2N + N)·dim·4` bytes to
//!   `(2 + N)·dim·4` for an N-update batch.
//! * **Sharding** — the vector is split into `shards` contiguous partitions
//!   folded concurrently on `std::thread::scope` workers (no extra
//!   dependencies). Partitions are disjoint, so no synchronisation or merge
//!   is needed.
//!
//! **Determinism:** within every element, updates are folded in batch order —
//! exactly the order sequential [`CumulativeFedAvg`] uses — regardless of
//! shard count or thread scheduling. Results are therefore bit-identical
//! run-to-run *and* bit-identical to the sequential fold (a fixed merge
//! order much stronger than the 1e-5 relative-error contract the tests
//! assert).
//!
//! Encoded batches go through the same machinery with the fused
//! decode-fold kernels of [`EncodedView`], so interior aggregators drain
//! their queue without ever materialising a dense intermediate.

use crate::aggregate::{CumulativeFedAvg, ModelUpdate};
use crate::codec::EncodedView;
use crate::model::DenseModel;
use lifl_types::{LiflError, Result};

/// Elements per cache block (8 KiB of `f32`: the block of the accumulator
/// and the matching slice of one update together fit comfortably in L1).
const BLOCK_ELEMS: usize = 2048;

/// A batch-oriented, sharded FedAvg accumulator wrapping the same running
/// state as [`CumulativeFedAvg`] (and interoperable with it: `shards == 1`
/// degenerates to a cache-blocked sequential fold on the calling thread).
#[derive(Debug, Clone)]
pub struct ShardedFedAvg {
    shards: usize,
    acc: CumulativeFedAvg,
}

impl ShardedFedAvg {
    /// Creates an accumulator for models of dimension `dim` split into
    /// `shards` partitions (clamped to at least 1).
    pub fn new(dim: usize, shards: usize) -> Self {
        ShardedFedAvg {
            shards: shards.max(1),
            acc: CumulativeFedAvg::new(dim),
        }
    }

    /// Wraps an existing sequential accumulator (preserving any state already
    /// folded into it) so batches can be folded sharded from here on.
    pub fn around(acc: CumulativeFedAvg, shards: usize) -> Self {
        ShardedFedAvg {
            shards: shards.max(1),
            acc,
        }
    }

    /// Unwraps back into the sequential accumulator, keeping all folded state.
    pub fn into_inner(self) -> CumulativeFedAvg {
        self.acc
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of updates folded so far.
    pub fn updates_folded(&self) -> u64 {
        self.acc.updates_folded()
    }

    /// Total samples represented by the folded updates.
    pub fn total_samples(&self) -> u64 {
        self.acc.total_samples()
    }

    /// Folds a single update eagerly (delegates to the sequential path; the
    /// sharded machinery only pays off on batches).
    ///
    /// # Errors
    /// Same conditions as [`CumulativeFedAvg::fold`].
    pub fn fold(&mut self, update: &ModelUpdate) -> Result<()> {
        self.acc.fold(update)
    }

    /// Folds a batch of dense updates across the shard workers.
    ///
    /// # Errors
    /// Returns [`LiflError::DimensionMismatch`] or
    /// [`LiflError::InvalidAggregationGoal`] (zero-sample update) before any
    /// state is mutated; the batch is all-or-nothing.
    pub fn fold_batch(&mut self, updates: &[ModelUpdate]) -> Result<()> {
        if updates.is_empty() {
            return Ok(());
        }
        let dim = self.ensure_dim(updates[0].model.dim())?;
        for update in updates {
            if update.samples == 0 {
                return Err(LiflError::InvalidAggregationGoal(0));
            }
            if update.model.dim() != dim {
                return Err(LiflError::DimensionMismatch {
                    expected: dim,
                    actual: update.model.dim(),
                });
            }
        }
        self.run_sharded(dim, |start, chunk| {
            for block_off in (0..chunk.len()).step_by(BLOCK_ELEMS) {
                let block_len = BLOCK_ELEMS.min(chunk.len() - block_off);
                let block = &mut chunk[block_off..block_off + block_len];
                let abs = start + block_off;
                // Several updates per accumulator load/store: the adds chain
                // serially in registers, so per-element fold order — and
                // therefore bit-exactness versus the sequential fold — is
                // preserved while the accumulator traffic is divided by the
                // unroll width.
                let mut octs = updates.chunks_exact(8);
                for oct in octs.by_ref() {
                    fold_block_octet(block, abs, block_len, oct);
                }
                let rest = octs.remainder();
                let mut quads = rest.chunks_exact(4);
                for quad in quads.by_ref() {
                    fold_block_quad(block, abs, block_len, quad);
                }
                for update in quads.remainder() {
                    let weight = update.samples as f32;
                    let src = &update.model.as_slice()[abs..abs + block_len];
                    crate::kernels::axpy(block, src, weight);
                }
            }
        });
        for update in updates {
            self.acc.total_samples += update.samples;
        }
        self.acc.updates_folded += updates.len() as u64;
        Ok(())
    }

    /// Folds a batch of *encoded* updates (`(view, samples)` pairs) across the
    /// shard workers using the fused decode-fold kernels; dense payloads can
    /// join the same batch wrapped by [`EncodedView::identity_over`].
    ///
    /// # Errors
    /// Returns [`LiflError::DimensionMismatch`] or
    /// [`LiflError::InvalidAggregationGoal`] (zero-sample update) before any
    /// state is mutated; the batch is all-or-nothing.
    pub fn fold_encoded_batch(&mut self, updates: &[(EncodedView<'_>, u64)]) -> Result<()> {
        if updates.is_empty() {
            return Ok(());
        }
        let dim = self.ensure_dim(updates[0].0.dim())?;
        for (view, samples) in updates {
            if *samples == 0 {
                return Err(LiflError::InvalidAggregationGoal(0));
            }
            if view.dim() != dim {
                return Err(LiflError::DimensionMismatch {
                    expected: dim,
                    actual: view.dim(),
                });
            }
        }
        // Sorted TopK payloads get a resumable cursor per update (the block
        // walk is ascending), so a chunk costs O(kept + blocks) instead of
        // rescanning every (index, value) pair once per block.
        let sorted_topk: Vec<bool> = updates
            .iter()
            .map(|(view, _)| view.topk_indices_sorted())
            .collect();
        self.run_sharded(dim, |start, chunk| {
            let mut cursors = vec![0usize; updates.len()];
            for block_off in (0..chunk.len()).step_by(BLOCK_ELEMS) {
                let block_len = BLOCK_ELEMS.min(chunk.len() - block_off);
                let block = &mut chunk[block_off..block_off + block_len];
                let abs = start + block_off;
                for (k, (view, samples)) in updates.iter().enumerate() {
                    if sorted_topk[k] {
                        view.fold_topk_window(&mut cursors[k], *samples as f32, abs, block);
                    } else {
                        view.fold_range_into(*samples as f32, abs, block);
                    }
                }
            }
        });
        for (_, samples) in updates {
            self.acc.total_samples += samples;
        }
        self.acc.updates_folded += updates.len() as u64;
        Ok(())
    }

    /// Produces the aggregated model as an intermediate update, leaving the
    /// accumulator empty for reuse.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidAggregationGoal`] if nothing has been folded.
    pub fn finalize(&mut self) -> Result<ModelUpdate> {
        self.acc.finalize()
    }

    /// Allocation-free finalize; see [`CumulativeFedAvg::drain_into`].
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidAggregationGoal`] if nothing has been folded.
    pub fn drain_into(&mut self, out: &mut DenseModel) -> Result<u64> {
        self.acc.drain_into(out)
    }

    /// Initialises (or checks) the accumulator dimension and returns it.
    fn ensure_dim(&mut self, dim: usize) -> Result<usize> {
        if self.acc.weighted_sum.is_empty() {
            self.acc.weighted_sum = DenseModel::zeros(dim);
        }
        let have = self.acc.weighted_sum.dim();
        if have != dim {
            return Err(LiflError::DimensionMismatch {
                expected: have,
                actual: dim,
            });
        }
        Ok(dim)
    }

    /// Runs `work(shard_start, shard_chunk)` over every shard partition.
    ///
    /// Partitions are distributed over at most `available_parallelism` scoped
    /// worker threads — oversubscribing a small machine only adds scheduler
    /// noise. The partitioning has no numeric effect (per-element fold order
    /// is batch order regardless), so any worker count produces bit-identical
    /// results.
    fn run_sharded(&mut self, dim: usize, work: impl Fn(usize, &mut [f32]) + Sync) {
        let workers = self
            .shards
            .min(std::thread::available_parallelism().map_or(1, usize::from));
        let chunk_len = dim.div_ceil(workers).max(1);
        let sum = self.acc.weighted_sum.as_mut_slice();
        if workers == 1 || dim <= chunk_len {
            work(0, sum);
            return;
        }
        std::thread::scope(|scope| {
            for (index, chunk) in sum.chunks_mut(chunk_len).enumerate() {
                let work = &work;
                scope.spawn(move || work(index * chunk_len, chunk));
            }
        });
    }
}

/// Folds four updates' `[abs, abs + len)` slices into `block` with one
/// accumulator load/store per element via the dispatched
/// [`crate::kernels::axpy4`] kernel; the per-element add chain runs in
/// batch order, bit-identical to four sequential folds.
fn fold_block_quad(block: &mut [f32], abs: usize, len: usize, quad: &[ModelUpdate]) {
    let w: [f32; 4] = std::array::from_fn(|k| quad[k].samples as f32);
    let s: [&[f32]; 4] = std::array::from_fn(|k| &quad[k].model.as_slice()[abs..abs + len]);
    crate::kernels::axpy4(block, s, w);
}

/// Eight-update variant of [`fold_block_quad`] (same ordering guarantee),
/// backed by [`crate::kernels::axpy8`].
fn fold_block_octet(block: &mut [f32], abs: usize, len: usize, oct: &[ModelUpdate]) {
    let w: [f32; 8] = std::array::from_fn(|k| oct[k].samples as f32);
    let s: [&[f32]; 8] = std::array::from_fn(|k| &oct[k].model.as_slice()[abs..abs + len]);
    crate::kernels::axpy8(block, s, w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::UpdateCodec;
    use lifl_types::{ClientId, CodecKind};

    fn batch(n: usize, dim: usize) -> Vec<ModelUpdate> {
        (0..n)
            .map(|i| {
                let values: Vec<f32> = (0..dim)
                    .map(|d| ((i * 31 + d * 7) % 113) as f32 * 0.017 - 0.95)
                    .collect();
                ModelUpdate::from_client(
                    ClientId::new(i as u64),
                    DenseModel::from_vec(values),
                    (i % 7 + 1) as u64,
                )
            })
            .collect()
    }

    #[test]
    fn sharded_batch_is_bit_identical_to_sequential() {
        let updates = batch(6, 10_000);
        let mut sequential = CumulativeFedAvg::new(10_000);
        for u in &updates {
            sequential.fold(u).unwrap();
        }
        let expected = sequential.finalize().unwrap();
        for shards in [1, 2, 3, 8, 64] {
            let mut sharded = ShardedFedAvg::new(10_000, shards);
            sharded.fold_batch(&updates).unwrap();
            assert_eq!(sharded.updates_folded(), 6);
            let got = sharded.finalize().unwrap();
            assert_eq!(got.samples, expected.samples, "{shards} shards");
            for (a, b) in got.model.as_slice().iter().zip(expected.model.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{shards} shards: {a} vs {b}");
            }
        }
    }

    #[test]
    fn encoded_batch_matches_decode_then_fold() {
        let updates = batch(5, 3000);
        let mut codec = UpdateCodec::new(CodecKind::Uniform8);
        let encoded: Vec<_> = updates
            .iter()
            .map(|u| (codec.encode(&u.model), u.samples))
            .collect();
        // Reference: decode each update, fold sequentially.
        let mut reference = CumulativeFedAvg::new(3000);
        for (e, samples) in &encoded {
            reference
                .fold(&ModelUpdate::intermediate(e.decode(), *samples))
                .unwrap();
        }
        let expected = reference.finalize().unwrap();
        let step = encoded[0].0.scale();
        for shards in [1, 4] {
            let mut sharded = ShardedFedAvg::new(3000, shards);
            let views: Vec<_> = encoded.iter().map(|(e, s)| (e.view(), *s)).collect();
            sharded.fold_encoded_batch(&views).unwrap();
            let got = sharded.finalize().unwrap();
            assert_eq!(got.samples, expected.samples);
            for (a, b) in got.model.as_slice().iter().zip(expected.model.as_slice()) {
                assert!(
                    (a - b).abs() <= step,
                    "{shards} shards: |{a} - {b}| > {step}"
                );
            }
        }
    }

    #[test]
    fn topk_batch_uses_the_cursor_path_and_matches_fold_into() {
        // dim spans many cache blocks so the resumable-cursor window path is
        // genuinely exercised across block boundaries.
        let dim = 20_000;
        let updates = batch(3, dim);
        let mut codec = UpdateCodec::new(CodecKind::TopK { permille: 100 });
        let encoded: Vec<_> = updates
            .iter()
            .map(|u| (codec.encode(&u.model), u.samples))
            .collect();
        assert!(encoded.iter().all(|(e, _)| e.view().topk_indices_sorted()));
        let mut reference = CumulativeFedAvg::new(dim);
        for (e, samples) in &encoded {
            reference.fold_encoded(e, *samples).unwrap();
        }
        let expected = reference.finalize().unwrap();
        let views: Vec<_> = encoded.iter().map(|(e, s)| (e.view(), *s)).collect();
        for shards in [1usize, 3] {
            let mut sharded = ShardedFedAvg::new(dim, shards);
            sharded.fold_encoded_batch(&views).unwrap();
            let got = sharded.finalize().unwrap();
            for (a, b) in got.model.as_slice().iter().zip(expected.model.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "topk cursor path diverged");
            }
        }
    }

    #[test]
    fn mixed_dense_and_encoded_batch_folds() {
        let updates = batch(4, 512);
        let mut codec = UpdateCodec::new(CodecKind::Identity);
        let dense_bytes: Vec<Vec<u8>> = updates
            .iter()
            .map(|u| {
                u.model
                    .as_slice()
                    .iter()
                    .flat_map(|v| v.to_le_bytes())
                    .collect()
            })
            .collect();
        let encoded: Vec<_> = updates
            .iter()
            .skip(2)
            .map(|u| codec.encode(&u.model))
            .collect();
        let mut mixed: Vec<(EncodedView<'_>, u64)> = dense_bytes
            .iter()
            .take(2)
            .zip(&updates)
            .map(|(b, u)| (EncodedView::identity_over(b), u.samples))
            .collect();
        mixed.extend(
            encoded
                .iter()
                .zip(updates.iter().skip(2))
                .map(|(e, u)| (e.view(), u.samples)),
        );
        let mut sharded = ShardedFedAvg::new(512, 2);
        sharded.fold_encoded_batch(&mixed).unwrap();
        let got = sharded.finalize().unwrap();
        let expected = crate::aggregate::fedavg(&updates).unwrap();
        assert_eq!(got.samples, expected.samples);
        for (a, b) in got.model.as_slice().iter().zip(expected.model.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "identity mixed batch diverged");
        }
    }

    #[test]
    fn bad_batches_are_rejected_atomically() {
        let mut updates = batch(3, 64);
        let mut sharded = ShardedFedAvg::new(64, 2);
        updates[2].samples = 0;
        assert!(sharded.fold_batch(&updates).is_err());
        assert_eq!(sharded.updates_folded(), 0);
        updates[2].samples = 1;
        updates[1].model = DenseModel::zeros(63);
        assert!(sharded.fold_batch(&updates).is_err());
        assert_eq!(sharded.updates_folded(), 0);
        assert!(sharded.finalize().is_err());
        sharded.fold_batch(&[]).unwrap();
        assert_eq!(sharded.updates_folded(), 0);
    }

    #[test]
    fn eager_single_fold_interoperates_with_batches() {
        let updates = batch(5, 256);
        let mut sharded = ShardedFedAvg::new(256, 4);
        sharded.fold(&updates[0]).unwrap();
        sharded.fold_batch(&updates[1..]).unwrap();
        let got = sharded.finalize().unwrap();
        let expected = crate::aggregate::fedavg(&updates).unwrap();
        for (a, b) in got.model.as_slice().iter().zip(expected.model.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn drain_into_reuses_allocations() {
        let updates = batch(4, 128);
        let mut sharded = ShardedFedAvg::new(128, 2);
        let mut out = DenseModel::zeros(128);
        for _ in 0..3 {
            sharded.fold_batch(&updates).unwrap();
            let samples = sharded.drain_into(&mut out).unwrap();
            assert_eq!(samples, updates.iter().map(|u| u.samples).sum::<u64>());
        }
        let expected = crate::aggregate::fedavg(&updates).unwrap();
        for (a, b) in out.as_slice().iter().zip(expected.model.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::aggregate::fedavg;
    use crate::codec::UpdateCodec;
    use lifl_types::{ClientId, CodecKind};
    use proptest::prelude::*;

    fn arbitrary_batch() -> impl Strategy<Value = Vec<ModelUpdate>> {
        (1usize..7, 1usize..600).prop_flat_map(|(n, dim)| {
            proptest::collection::vec(
                (proptest::collection::vec(-9.0f32..9.0, dim), 1u64..40),
                n..=n,
            )
            .prop_map(|items| {
                items
                    .into_iter()
                    .enumerate()
                    .map(|(i, (values, samples))| {
                        ModelUpdate::from_client(
                            ClientId::new(i as u64),
                            DenseModel::from_vec(values),
                            samples,
                        )
                    })
                    .collect()
            })
        })
    }

    proptest! {
        /// The tentpole equivalence contract: sharded batch folding at 1, 2
        /// and 8 shards matches the sequential `CumulativeFedAvg` within 1e-5
        /// relative error (it is in fact bit-identical) and is bit-identical
        /// across repeated runs at a fixed shard count.
        #[test]
        fn sharded_matches_sequential_and_is_deterministic(updates in arbitrary_batch()) {
            let dim = updates[0].model.dim();
            let mut sequential = CumulativeFedAvg::new(dim);
            for u in &updates {
                sequential.fold(u).unwrap();
            }
            let expected = sequential.finalize().unwrap();
            for shards in [1usize, 2, 8] {
                let run = |_: usize| {
                    let mut s = ShardedFedAvg::new(dim, shards);
                    s.fold_batch(&updates).unwrap();
                    s.finalize().unwrap()
                };
                let first = run(0);
                let second = run(1);
                prop_assert_eq!(first.samples, expected.samples);
                for ((a, b), c) in first
                    .model
                    .as_slice()
                    .iter()
                    .zip(second.model.as_slice())
                    .zip(expected.model.as_slice())
                {
                    prop_assert_eq!(a.to_bits(), b.to_bits(),
                        "shards {} not deterministic: {} vs {}", shards, a, b);
                    let tolerance = 1e-5f32 * c.abs().max(1.0);
                    prop_assert!((a - c).abs() <= tolerance,
                        "shards {}: {} vs sequential {}", shards, a, c);
                }
            }
        }

        /// Fused encoded batch folding equals decode-then-fold bit-exactly for
        /// `Identity` and within one quantization step (per unit sample
        /// weight) for the uniform codecs.
        #[test]
        fn fused_encoded_batch_matches_decode_then_fold(
            updates in arbitrary_batch(),
            seed in 0u64..500,
        ) {
            let dim = updates[0].model.dim();
            for kind in [CodecKind::Identity, CodecKind::Uniform8, CodecKind::Uniform4] {
                let mut codec = UpdateCodec::with_seed(kind, seed);
                let encoded: Vec<_> = updates
                    .iter()
                    .map(|u| (codec.encode(&u.model), u.samples))
                    .collect();
                let decoded: Vec<ModelUpdate> = encoded
                    .iter()
                    .map(|(e, s)| ModelUpdate::intermediate(e.decode(), *s))
                    .collect();
                let expected = fedavg(&decoded).unwrap();
                let views: Vec<_> = encoded.iter().map(|(e, s)| (e.view(), *s)).collect();
                for shards in [1usize, 4] {
                    let mut sharded = ShardedFedAvg::new(dim, shards);
                    sharded.fold_encoded_batch(&views).unwrap();
                    let got = sharded.finalize().unwrap();
                    prop_assert_eq!(got.samples, expected.samples);
                    let step = encoded.iter().map(|(e, _)| e.scale()).fold(0.0f32, f32::max);
                    for (a, b) in got.model.as_slice().iter().zip(expected.model.as_slice()) {
                        if kind.is_lossless() {
                            prop_assert_eq!(a.to_bits(), b.to_bits(),
                                "identity fused fold not bit-exact: {} vs {}", a, b);
                        } else {
                            prop_assert!((a - b).abs() <= step.max(1e-6),
                                "{}: fused {} vs decode-then-fold {} beyond step {}",
                                kind, a, b, step);
                        }
                    }
                }
            }
        }
    }
}
