//! Staleness weighting for asynchronous aggregation.
//!
//! When aggregation is asynchronous (Fig. 11, §7 future work; PAPAYA (Huba et
//! al., 2022) and FedBuff (Nguyen et al., 2022) in the paper's references),
//! a client's update may have been computed against a global model several
//! versions old. The standard mitigation is to down-weight stale updates by a
//! function `s(τ)` of the staleness `τ = current_version − base_version`.
//!
//! This module provides the three weighting families used in that literature
//! plus the machinery to apply them to a [`ModelUpdate`]'s sample weight so the
//! unchanged [`CumulativeFedAvg`](crate::aggregate::CumulativeFedAvg)
//! accumulator can consume them.

use crate::aggregate::ModelUpdate;
use lifl_types::{LiflError, Result};
use serde::{Deserialize, Serialize};

/// A staleness-weighting policy `s(τ)` with `s(0) = 1`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum StalenessPolicy {
    /// Every update counts fully regardless of staleness (`s(τ) = 1`).
    #[default]
    Constant,
    /// Polynomial decay `s(τ) = (1 + τ)^(−a)` (FedBuff's default family).
    Polynomial {
        /// Decay exponent `a > 0`.
        exponent: f64,
    },
    /// Hinge decay: full weight up to `threshold`, then `1 / (1 + b·(τ − threshold))`.
    Hinge {
        /// Staleness up to which updates keep full weight.
        threshold: u64,
        /// Decay slope `b > 0` beyond the threshold.
        slope: f64,
    },
}

impl StalenessPolicy {
    /// The weight multiplier for an update with staleness `tau`.
    ///
    /// Always in `(0, 1]`, and exactly `1.0` at `tau = 0`.
    pub fn weight(self, tau: u64) -> f64 {
        match self {
            StalenessPolicy::Constant => 1.0,
            StalenessPolicy::Polynomial { exponent } => (1.0 + tau as f64).powf(-exponent.max(0.0)),
            StalenessPolicy::Hinge { threshold, slope } => {
                if tau <= threshold {
                    1.0
                } else {
                    1.0 / (1.0 + slope.max(0.0) * (tau - threshold) as f64)
                }
            }
        }
    }

    /// Validates policy parameters.
    ///
    /// # Errors
    /// Returns [`LiflError::InvalidConfig`] if an exponent or slope is not positive.
    pub fn validate(&self) -> Result<()> {
        match self {
            StalenessPolicy::Constant => Ok(()),
            StalenessPolicy::Polynomial { exponent } if *exponent > 0.0 => Ok(()),
            StalenessPolicy::Polynomial { exponent } => Err(LiflError::InvalidConfig(format!(
                "polynomial staleness exponent must be positive, got {exponent}"
            ))),
            StalenessPolicy::Hinge { slope, .. } if *slope > 0.0 => Ok(()),
            StalenessPolicy::Hinge { slope, .. } => Err(LiflError::InvalidConfig(format!(
                "hinge staleness slope must be positive, got {slope}"
            ))),
        }
    }

    /// Applies the staleness weight to an update by scaling its sample count
    /// (rounded, but never below 1 so the update still contributes).
    pub fn apply(self, update: &ModelUpdate, tau: u64) -> ModelUpdate {
        ModelUpdate {
            client: update.client,
            model: update.model.clone(),
            samples: self.scaled_samples(update.samples, tau),
        }
    }

    /// The staleness-discounted sample count on its own — the borrow-friendly
    /// core of [`StalenessPolicy::apply`] for paths (such as the fused
    /// encoded fold) that never need a scaled copy of the model.
    pub fn scaled_samples(self, samples: u64, tau: u64) -> u64 {
        ((samples as f64) * self.weight(tau)).round().max(1.0) as u64
    }
}

impl std::fmt::Display for StalenessPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StalenessPolicy::Constant => write!(f, "constant"),
            StalenessPolicy::Polynomial { exponent } => write!(f, "poly(a={exponent})"),
            StalenessPolicy::Hinge { threshold, slope } => {
                write!(f, "hinge(t={threshold}, b={slope})")
            }
        }
    }
}

/// Tracks staleness statistics across an asynchronous run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StalenessTracker {
    observations: Vec<u64>,
}

impl StalenessTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the staleness of one accepted update.
    pub fn record(&mut self, tau: u64) {
        self.observations.push(tau);
    }

    /// Number of updates observed.
    pub fn count(&self) -> usize {
        self.observations.len()
    }

    /// Number of stale updates (τ > 0).
    pub fn stale_count(&self) -> usize {
        self.observations.iter().filter(|t| **t > 0).count()
    }

    /// Mean staleness, 0 when nothing has been recorded.
    pub fn mean(&self) -> f64 {
        if self.observations.is_empty() {
            return 0.0;
        }
        self.observations.iter().sum::<u64>() as f64 / self.observations.len() as f64
    }

    /// Maximum staleness observed, 0 when nothing has been recorded.
    pub fn max(&self) -> u64 {
        self.observations.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DenseModel;
    use lifl_types::ClientId;

    #[test]
    fn fresh_updates_keep_full_weight() {
        for policy in [
            StalenessPolicy::Constant,
            StalenessPolicy::Polynomial { exponent: 0.5 },
            StalenessPolicy::Hinge {
                threshold: 3,
                slope: 0.4,
            },
        ] {
            assert_eq!(policy.weight(0), 1.0, "{policy}");
        }
    }

    #[test]
    fn polynomial_weight_decreases_with_staleness() {
        let policy = StalenessPolicy::Polynomial { exponent: 0.5 };
        let mut prev = policy.weight(0);
        for tau in 1..10 {
            let w = policy.weight(tau);
            assert!(w < prev, "weight must strictly decrease: {w} vs {prev}");
            assert!(w > 0.0);
            prev = w;
        }
    }

    #[test]
    fn hinge_keeps_full_weight_up_to_threshold() {
        let policy = StalenessPolicy::Hinge {
            threshold: 5,
            slope: 1.0,
        };
        for tau in 0..=5 {
            assert_eq!(policy.weight(tau), 1.0);
        }
        assert!(policy.weight(6) < 1.0);
        assert!(policy.weight(20) < policy.weight(6));
    }

    #[test]
    fn apply_scales_samples_but_never_to_zero() {
        let update =
            ModelUpdate::from_client(ClientId::new(1), DenseModel::from_vec(vec![1.0]), 10);
        let policy = StalenessPolicy::Polynomial { exponent: 2.0 };
        let scaled = policy.apply(&update, 3);
        assert!(scaled.samples < update.samples);
        assert!(scaled.samples >= 1);
        assert_eq!(scaled.model, update.model);
        // Extreme staleness still leaves at least one sample of weight.
        assert_eq!(policy.apply(&update, 10_000).samples, 1);
    }

    #[test]
    fn validation_flags_bad_parameters() {
        assert!(StalenessPolicy::Polynomial { exponent: 0.0 }
            .validate()
            .is_err());
        assert!(StalenessPolicy::Hinge {
            threshold: 2,
            slope: 0.0
        }
        .validate()
        .is_err());
        assert!(StalenessPolicy::Constant.validate().is_ok());
        assert!(StalenessPolicy::Polynomial { exponent: 1.0 }
            .validate()
            .is_ok());
    }

    #[test]
    fn tracker_statistics() {
        let mut tracker = StalenessTracker::new();
        assert_eq!(tracker.mean(), 0.0);
        assert_eq!(tracker.max(), 0);
        for tau in [0, 0, 2, 4] {
            tracker.record(tau);
        }
        assert_eq!(tracker.count(), 4);
        assert_eq!(tracker.stale_count(), 2);
        assert!((tracker.mean() - 1.5).abs() < 1e-12);
        assert_eq!(tracker.max(), 4);
    }

    #[test]
    fn display_labels_are_informative() {
        assert_eq!(StalenessPolicy::Constant.to_string(), "constant");
        assert!(StalenessPolicy::Polynomial { exponent: 0.5 }
            .to_string()
            .contains("0.5"));
        assert!(StalenessPolicy::Hinge {
            threshold: 3,
            slope: 0.4
        }
        .to_string()
        .contains("3"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn weights_are_in_unit_interval_and_monotone(
            exponent in 0.1f64..4.0,
            threshold in 0u64..10,
            slope in 0.1f64..4.0,
            tau in 0u64..1000,
        ) {
            for policy in [
                StalenessPolicy::Constant,
                StalenessPolicy::Polynomial { exponent },
                StalenessPolicy::Hinge { threshold, slope },
            ] {
                let w = policy.weight(tau);
                prop_assert!(w > 0.0 && w <= 1.0, "{policy}: weight {w} out of range");
                let w_next = policy.weight(tau + 1);
                prop_assert!(w_next <= w + 1e-12, "{policy}: weight must be non-increasing");
            }
        }
    }
}
