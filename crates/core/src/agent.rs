//! The per-node LIFL agent (§3): owns the node's shared-memory store, manages
//! aggregator lifecycle on instructions from the control plane, drains the
//! eBPF metrics map toward the metric server and checkpoints the global model
//! asynchronously (Appendix B).

use crate::metric_server::NodeLoad;
use lifl_ebpf::MetricsMap;
use lifl_shmem::{CheckpointStore, ObjectStore};
use lifl_types::{AggregatorId, NodeId, RoundId, SimDuration, SimTime};
use std::collections::HashSet;

/// The per-node agent.
#[derive(Debug)]
pub struct LiflAgent {
    node: NodeId,
    store: ObjectStore,
    metrics: MetricsMap,
    checkpoints: CheckpointStore,
    managed: HashSet<AggregatorId>,
    created: u64,
    terminated: u64,
    updates_seen: u64,
    window_start: SimTime,
}

impl LiflAgent {
    /// Creates an agent for `node`.
    pub fn new(node: NodeId) -> Self {
        LiflAgent {
            node,
            store: ObjectStore::new(),
            metrics: MetricsMap::new(),
            checkpoints: CheckpointStore::new(),
            managed: HashSet::new(),
            created: 0,
            terminated: 0,
            updates_seen: 0,
            window_start: SimTime::ZERO,
        }
    }

    /// The node this agent runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's shared-memory object store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The node's eBPF metrics map.
    pub fn metrics(&self) -> &MetricsMap {
        &self.metrics
    }

    /// Creates (registers) an aggregator runtime on this node.
    pub fn create_aggregator(&mut self, aggregator: AggregatorId) {
        if self.managed.insert(aggregator) {
            self.created += 1;
        }
    }

    /// Terminates an aggregator runtime on this node.
    pub fn terminate_aggregator(&mut self, aggregator: AggregatorId) {
        if self.managed.remove(&aggregator) {
            self.terminated += 1;
        }
    }

    /// Aggregators currently managed.
    pub fn managed_count(&self) -> usize {
        self.managed.len()
    }

    /// Lifetime counts of created and terminated aggregators.
    pub fn lifecycle_counts(&self) -> (u64, u64) {
        (self.created, self.terminated)
    }

    /// Records that one model update arrived at this node (for the arrival-rate report).
    pub fn record_arrival(&mut self) {
        self.updates_seen += 1;
    }

    /// Drains the metrics map and produces the node's load report for the
    /// interval since the previous report, resetting the window.
    pub fn report_load(&mut self, now: SimTime) -> NodeLoad {
        let window = now.duration_since(self.window_start).as_secs().max(1e-9);
        let drained = self.metrics.drain();
        let (total_updates, total_exec): (u64, f64) =
            drained.iter().fold((0, 0.0), |acc, (_, s)| {
                (
                    acc.0 + s.updates_aggregated,
                    acc.1 + s.total_exec_time.as_secs(),
                )
            });
        let avg_exec = if total_updates > 0 {
            SimDuration::from_secs(total_exec / total_updates as f64)
        } else {
            SimDuration::ZERO
        };
        let load = NodeLoad {
            arrival_rate: self.updates_seen as f64 / window,
            avg_exec_time: avg_exec,
        };
        self.updates_seen = 0;
        self.window_start = now;
        load
    }

    /// Checkpoints the global model asynchronously (Appendix B): the write is
    /// recorded but adds nothing to the aggregation critical path.
    pub fn checkpoint(&self, round: RoundId, model_bytes: Vec<u8>, now: SimTime) {
        self.checkpoints.save(round, model_bytes, now);
    }

    /// The checkpoint store (external persistent storage emulation).
    pub fn checkpoints(&self) -> &CheckpointStore {
        &self.checkpoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_management() {
        let mut agent = LiflAgent::new(NodeId::new(2));
        agent.create_aggregator(AggregatorId::new(1));
        agent.create_aggregator(AggregatorId::new(2));
        agent.create_aggregator(AggregatorId::new(1));
        assert_eq!(agent.managed_count(), 2);
        agent.terminate_aggregator(AggregatorId::new(1));
        assert_eq!(agent.managed_count(), 1);
        assert_eq!(agent.lifecycle_counts(), (2, 1));
        assert_eq!(agent.node(), NodeId::new(2));
    }

    #[test]
    fn load_report_uses_window_and_metrics() {
        let mut agent = LiflAgent::new(NodeId::new(0));
        for _ in 0..10 {
            agent.record_arrival();
        }
        agent.metrics().record_aggregation(
            AggregatorId::new(1),
            SimDuration::from_secs(2.0),
            SimTime::from_secs(1.0),
        );
        agent.metrics().record_aggregation(
            AggregatorId::new(1),
            SimDuration::from_secs(4.0),
            SimTime::from_secs(2.0),
        );
        let load = agent.report_load(SimTime::from_secs(5.0));
        assert!((load.arrival_rate - 2.0).abs() < 1e-9);
        assert!((load.avg_exec_time.as_secs() - 3.0).abs() < 1e-9);
        // Window resets.
        let load2 = agent.report_load(SimTime::from_secs(10.0));
        assert_eq!(load2.arrival_rate, 0.0);
    }

    #[test]
    fn checkpointing_is_recorded() {
        let agent = LiflAgent::new(NodeId::new(0));
        agent.checkpoint(RoundId::new(3), vec![1, 2, 3], SimTime::from_secs(9.0));
        assert_eq!(agent.checkpoints().len(), 1);
        assert_eq!(agent.checkpoints().latest().unwrap().round, RoundId::new(3));
    }
}
