//! Entry point binding the fourteen integration suites into one test binary.

mod admission;
mod algorithms;
mod cluster;
mod codec;
mod driver;
mod end_to_end;
mod extensions;
mod failure_injection;
mod placement_routing;
mod platform_vs_baselines;
mod runtime_inprocess;
mod serverless_substrate;
mod session;
mod workspace_smoke;
