//! Minimal offline stand-in for `serde_json`.
//!
//! Emits and parses real JSON text through the `serde` shim's [`Value`]
//! data model. Supports exactly the entry points this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`].

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a deserializable value.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Writes a [`Value`] as JSON. `indent` of `None` means compact output.
fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            // JSON has no Inf/NaN; erroring at write time (like the real
            // serde_json) beats emitting a null that breaks the round-trip.
            if !v.is_finite() {
                return Err(Error::new(format!("cannot serialize {v} as JSON")));
            }
            out.push_str(&v.to_string());
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !fields.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}
