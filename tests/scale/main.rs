//! Scale tier: streaming million-client ingress at **flat memory**.
//!
//! A live-byte high-water [`GlobalAlloc`] shim (extending the `alloc` tier's
//! counting-allocator idea from counts to a live-bytes peak) wraps the system
//! allocator. The tier streams simulated clients through the bounded
//! admission ingress — `try_ingest`, partial quorum rounds, queued overflow,
//! rejected surplus — and proves the peak of *live* heap bytes is a function
//! of the queue caps and model size, never of the client count: 10× the
//! clients must stay within 2× the peak.
//!
//! The default `cargo test -q` run is the 10k-client smoke (1k vs 10k peaks
//! compared); the full 1M-client round runs when `LIFL_SCALE_FULL=1` — the
//! dedicated `just scale` / CI step sets it.
//!
//! The tier also proves the KPA autoscaling acceptance end to end: under a
//! sustained arrival spike the fleet-scaled cluster grows leaf aggregators
//! and keeps draining, while the fixed-tree baseline's queue depth diverges
//! round over round until its budget turns clients away.

// lifl-lint: allow-file(unsafe) — implementing `GlobalAlloc` requires
// `unsafe`; this live-byte high-water shim is the sanctioned unsafe site of
// this tier and only delegates to the system allocator.

use lifl_core::cluster::ClusterBuilder;
use lifl_core::session::{Session, SessionBuilder, Update};
use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::DenseModel;
use lifl_serverless::FleetConfig;
use lifl_types::{AdmissionConfig, ClientId, Topology};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn note_alloc(size: usize) {
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn note_dealloc(size: usize) {
    LIVE_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
}

struct HighWaterAllocator;

// SAFETY: delegates every operation unchanged to the system allocator; the
// only addition is relaxed atomic live/peak bookkeeping.
unsafe impl GlobalAlloc for HighWaterAllocator {
    // SAFETY: same contract as `System::alloc`; the caller's `Layout`
    // obligations pass through unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwards the caller's layout to the system allocator.
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    // SAFETY: same contract as `System::dealloc`; `ptr`/`layout` obligations
    // pass through unchanged.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        note_dealloc(layout.size());
        // SAFETY: forwards the caller's pointer and layout unchanged.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as `System::alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        // SAFETY: forwards the caller's layout to the system allocator.
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    // SAFETY: same contract as `System::realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // SAFETY: forwards the caller's pointer, layout and size unchanged.
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            if new_size >= layout.size() {
                note_alloc(new_size - layout.size());
            } else {
                note_dealloc(layout.size() - new_size);
            }
        }
        new_ptr
    }
}

#[global_allocator]
static ALLOCATOR: HighWaterAllocator = HighWaterAllocator;

/// Resets the high-water mark to the current live bytes and returns a
/// baseline to measure peaks against.
fn reset_peak() -> u64 {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live, Ordering::Relaxed);
    live
}

fn peak_over(baseline: u64) -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(baseline)
}

/// Both tests sample the same global counters: serialise them.
static SERIAL: Mutex<()> = Mutex::new(());

const DIM: usize = 64;
const LEAVES: usize = 16;
const PER_LEAF: usize = 16;
const CAPACITY: usize = LEAVES * PER_LEAF;

/// A deterministic dense update for one simulated client (no per-client
/// state is kept anywhere in the test — the point is that the *platform*
/// keeps none either).
fn update(client: u64) -> ModelUpdate {
    let values: Vec<f32> = (0..DIM)
        .map(|d| ((client as usize).wrapping_mul(31).wrapping_add(d * 7) % 251) as f32 * 0.01 - 1.2)
        .collect();
    ModelUpdate::from_client(
        ClientId::new(client),
        DenseModel::from_vec(values),
        client % 17 + 1,
    )
}

fn streaming_session() -> Session {
    SessionBuilder::new()
        .two_level(LEAVES, PER_LEAF)
        .admission(AdmissionConfig::bounded(8, 1 << 16).with_quorum(1))
        .build()
        .expect("session")
}

/// Streams `clients` one-shot clients through the bounded ingress: offers
/// never block, full rounds drive and re-open, queued overflow drains, and
/// surplus past the queue budget is turned away with a retry hint. Returns
/// `(aggregated, rejected)` totals.
fn run_streaming(session: &mut Session, clients: u64) -> (u64, u64) {
    let mut aggregated = 0u64;
    let mut rejected = 0u64;
    for client in 0..clients {
        let outcome = session
            .try_ingest(Update::Dense(update(client)))
            .expect("try_ingest");
        if outcome.is_rejected() {
            rejected += 1;
        }
        if session.pending_updates() as usize == CAPACITY {
            aggregated += session.drive().expect("drive").updates_ingested;
        }
    }
    if session.pending_updates() > 0 {
        aggregated += session.drive().expect("drive").updates_ingested;
    }
    (aggregated, rejected)
}

/// One measured pass: a fresh session plus its whole streaming run, so the
/// peak covers everything a deployment of that client count would hold live
/// at once (stores, pools, queues, scratch — all sized by topology and queue
/// caps, none of it by `clients`).
fn measured_peak(clients: u64) -> (u64, u64) {
    let baseline = reset_peak();
    let mut session = streaming_session();
    let (aggregated, _) = run_streaming(&mut session, clients);
    let peak = peak_over(baseline);
    drop(session);
    (peak, aggregated)
}

#[test]
fn streaming_ingress_memory_is_flat_in_the_client_count() {
    let _guard = SERIAL.lock().expect("serial");
    // Warm-up sizes the process-wide one-offs (thread-local scratch, pool
    // slabs of the first session) outside the measurement window.
    let mut warmup = streaming_session();
    run_streaming(&mut warmup, 2_000);
    drop(warmup);

    let (peak_1k, aggregated_1k) = measured_peak(1_000);
    let (peak_10k, aggregated_10k) = measured_peak(10_000);
    assert_eq!(aggregated_1k, 1_000, "every offered client aggregates");
    assert_eq!(aggregated_10k, 10_000);
    assert!(peak_1k > 0 && peak_10k > 0);
    // The acceptance shape at smoke scale: 10x the clients, <= 2x the peak.
    assert!(
        peak_10k <= peak_1k * 2,
        "peak grew with the client count: 1k -> {peak_1k} bytes, 10k -> {peak_10k} bytes"
    );

    // The full million-client round (the dedicated `just scale` CI step).
    if std::env::var_os("LIFL_SCALE_FULL").is_some() {
        let (peak_1m, aggregated_1m) = measured_peak(1_000_000);
        assert_eq!(aggregated_1m, 1_000_000);
        assert!(
            peak_1m <= peak_10k * 2,
            "million-client peak not flat: 10k -> {peak_10k} bytes, 1M -> {peak_1m} bytes"
        );
    }
}

#[test]
fn kpa_fleet_absorbs_the_spike_the_fixed_tree_cannot() {
    let _guard = SERIAL.lock().expect("serial");
    let topology = Topology::new(vec![2, 2, 2]).unwrap();
    // Roomy queues so the fixed tree's depth can visibly diverge before the
    // budget starts turning clients away.
    let admission = AdmissionConfig::bounded(512, 1 << 24).with_quorum(1);
    let mut scaled = ClusterBuilder::new()
        .topology(topology.clone())
        .admission(admission)
        .fleet_scaling(
            FleetConfig::default()
                .with_target_depth(1.0)
                .with_leaf_bounds(2, 32),
        )
        .build()
        .unwrap();
    let mut fixed = ClusterBuilder::new()
        .topology(topology)
        .admission(admission)
        .build()
        .unwrap();
    // A sustained spike: 64 arrivals per round against an 8-update tree.
    let mut client = 0u64;
    let mut fixed_depths = Vec::new();
    let mut scaled_depths = Vec::new();
    for _ in 0..30 {
        for _ in 0..64 {
            let _ = scaled.try_ingest(Update::Dense(update(client))).unwrap();
            let _ = fixed.try_ingest(Update::Dense(update(client))).unwrap();
            client += 1;
        }
        scaled.drive().expect("scaled drive");
        fixed.drive().expect("fixed drive");
        scaled_depths.push(scaled.queued_updates());
        fixed_depths.push(fixed.queued_updates());
    }
    // The fixed tree diverges: every round parks more than the last until
    // the budget saturates, and it ends an order of magnitude behind.
    let diverging = fixed_depths.windows(2).filter(|w| w[1] > w[0]).count();
    assert!(
        diverging >= 15,
        "fixed-tree backlog should climb round over round: {fixed_depths:?}"
    );
    let fixed_final = *fixed_depths.last().unwrap();
    let scaled_final = *scaled_depths.last().unwrap();
    assert!(
        fixed_final >= 10 * scaled_final.max(1),
        "fixed backlog {fixed_final} should dwarf the scaled fleet's {scaled_final}"
    );
    // The fleet actually grew, and kept every client (no rejections).
    assert!(
        scaled.round_capacity() > 8,
        "the spike must grow the fleet, capacity still {}",
        scaled.round_capacity()
    );
    assert_eq!(scaled.admission_stats().rejected, 0);
}
