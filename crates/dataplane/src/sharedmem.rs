//! Shared-memory hop model: LIFL's intra-node zero-copy transfer (§4.1).
//!
//! All costs are priced off the bytes that actually sit in shared memory —
//! for a codec-compressed update that is the encoded wire size, not the dense
//! parameter count (see [`SharedMemoryModel::encoded_latency`]).

use lifl_types::{CodecKind, CpuCycles, SimDuration};

/// Cost model of one shared-memory hand-off between two co-located
/// aggregators: the payload stays in place; only the 16-byte object key moves
/// through the SKMSG path, and the consumer touches the payload when it
/// aggregates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedMemoryModel {
    /// Latency per mebibyte for the consumer-side access of the payload, seconds.
    pub latency_per_mib: f64,
    /// Fixed latency of the SKMSG key delivery, seconds.
    pub latency_fixed: f64,
    /// CPU cycles per mebibyte touched by the consumer.
    pub cycles_per_mib: f64,
    /// Fixed CPU cycles per SKMSG invocation (the eBPF program run).
    pub cycles_fixed: f64,
}

impl Default for SharedMemoryModel {
    fn default() -> Self {
        // Calibrated to Fig. 7(a): 0.14 / 0.25 / 0.76 s for 44 / 83 / 232 MiB,
        // i.e. ~3.3 ms per MiB, and Fig. 7(b): 0.21-2.45 Gcycles.
        SharedMemoryModel {
            latency_per_mib: 0.00328,
            latency_fixed: 0.0002,
            cycles_per_mib: 10.5e6,
            cycles_fixed: 5.0e6,
        }
    }
}

impl SharedMemoryModel {
    /// Latency of one shared-memory hand-off of `bytes`.
    pub fn latency(&self, bytes: u64) -> SimDuration {
        let mib = bytes as f64 / (1024.0 * 1024.0);
        SimDuration::from_secs(self.latency_fixed + self.latency_per_mib * mib)
    }

    /// CPU cycles of one shared-memory hand-off of `bytes`.
    pub fn cpu(&self, bytes: u64) -> CpuCycles {
        let mib = bytes as f64 / (1024.0 * 1024.0);
        CpuCycles(self.cycles_fixed + self.cycles_per_mib * mib)
    }

    /// Bytes buffered: the single shared copy of the payload.
    pub fn buffered_bytes(&self, bytes: u64) -> u64 {
        bytes
    }

    /// Latency of handing off one `dense_bytes`-sized update stored under
    /// `codec` (the consumer touches only the encoded payload).
    pub fn encoded_latency(&self, dense_bytes: u64, codec: CodecKind) -> SimDuration {
        self.latency(codec.encoded_bytes(dense_bytes))
    }

    /// CPU cycles of the same codec-aware hand-off.
    pub fn encoded_cpu(&self, dense_bytes: u64, codec: CodecKind) -> CpuCycles {
        self.cpu(codec.encoded_bytes(dense_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_fig7a_calibration() {
        let m = SharedMemoryModel::default();
        let r18 = m.latency(44 * 1024 * 1024).as_secs();
        let r34 = m.latency(83 * 1024 * 1024).as_secs();
        let r152 = m.latency(232 * 1024 * 1024).as_secs();
        assert!((r18 - 0.14).abs() < 0.02, "ResNet-18: {r18}");
        assert!((r34 - 0.25).abs() < 0.04, "ResNet-34: {r34}");
        assert!((r152 - 0.76).abs() < 0.05, "ResNet-152: {r152}");
    }

    #[test]
    fn single_copy_in_memory() {
        let m = SharedMemoryModel::default();
        assert_eq!(m.buffered_bytes(500), 500);
        assert!(m.cpu(1 << 20).0 > 0.0);
    }

    #[test]
    fn encoded_handoff_is_cheaper_than_dense() {
        let m = SharedMemoryModel::default();
        let dense = 232 * 1024 * 1024;
        let identity = m.encoded_latency(dense, CodecKind::Identity);
        let quantized = m.encoded_latency(dense, CodecKind::Uniform8);
        assert_eq!(identity, m.latency(dense));
        assert!(quantized < identity);
        assert!(m.encoded_cpu(dense, CodecKind::Uniform4).0 < m.cpu(dense).0);
    }
}
