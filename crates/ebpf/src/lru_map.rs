//! LRU hash maps (`BPF_MAP_TYPE_LRU_HASH`).
//!
//! The sockmap and metrics map in LIFL are small, but the inter-node routing
//! cache on a gateway naturally wants LRU semantics: routes to aggregators
//! that have not been used recently are the safest to evict when the hierarchy
//! is re-planned (§5.2, Appendix A). The kernel's LRU hash map never rejects
//! an insert — instead it evicts the least-recently-used entry — and that is
//! the behaviour reproduced here.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

#[derive(Debug)]
struct LruInner<K, V> {
    entries: HashMap<K, (V, u64)>,
    tick: u64,
    max_entries: usize,
    evictions: u64,
}

/// An emulated `BPF_MAP_TYPE_LRU_HASH`.
#[derive(Debug, Clone)]
pub struct LruHashMap<K, V> {
    inner: Arc<Mutex<LruInner<K, V>>>,
}

impl<K: Eq + Hash + Clone, V: Clone> LruHashMap<K, V> {
    /// Creates an LRU map holding at most `max_entries` entries (minimum 1).
    pub fn new(max_entries: usize) -> Self {
        LruHashMap {
            inner: Arc::new(Mutex::new(LruInner {
                entries: HashMap::new(),
                tick: 0,
                max_entries: max_entries.max(1),
                evictions: 0,
            })),
        }
    }

    /// Inserts or replaces the value for `key`. When the map is full, the
    /// least-recently-used entry is evicted first; the insert itself never
    /// fails (the kernel LRU map's defining property).
    pub fn update_elem(&self, key: K, value: V) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.entries.contains_key(&key) && inner.entries.len() >= inner.max_entries {
            if let Some(oldest) = inner
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&oldest);
                inner.evictions += 1;
            }
        }
        inner.entries.insert(key, (value, tick));
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn lookup_elem(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(key) {
            Some((value, used)) => {
                *used = tick;
                Some(value.clone())
            }
            None => None,
        }
    }

    /// Deletes the entry for `key`, returning whether it existed.
    pub fn delete_elem(&self, key: &K) -> bool {
        self.inner.lock().entries.remove(key).is_some()
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of entries evicted to make room so far.
    pub fn evictions(&self) -> u64 {
        self.inner.lock().evictions
    }

    /// Whether `key` is currently present (without refreshing recency).
    pub fn contains(&self, key: &K) -> bool {
        self.inner.lock().entries.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_never_fail_and_evict_lru() {
        let map: LruHashMap<u32, &'static str> = LruHashMap::new(2);
        map.update_elem(1, "one");
        map.update_elem(2, "two");
        // Touch key 1 so key 2 becomes the LRU entry.
        assert_eq!(map.lookup_elem(&1), Some("one"));
        map.update_elem(3, "three");
        assert_eq!(map.len(), 2);
        assert!(map.contains(&1), "recently used key survives");
        assert!(!map.contains(&2), "LRU key is evicted");
        assert!(map.contains(&3));
        assert_eq!(map.evictions(), 1);
    }

    #[test]
    fn updating_an_existing_key_does_not_evict() {
        let map: LruHashMap<u32, u32> = LruHashMap::new(2);
        map.update_elem(1, 10);
        map.update_elem(2, 20);
        map.update_elem(1, 11);
        assert_eq!(map.len(), 2);
        assert_eq!(map.evictions(), 0);
        assert_eq!(map.lookup_elem(&1), Some(11));
    }

    #[test]
    fn delete_and_emptiness() {
        let map: LruHashMap<u8, u8> = LruHashMap::new(4);
        assert!(map.is_empty());
        map.update_elem(1, 1);
        assert!(map.delete_elem(&1));
        assert!(!map.delete_elem(&1));
        assert!(map.is_empty());
    }

    #[test]
    fn capacity_of_zero_is_clamped_to_one() {
        let map: LruHashMap<u8, u8> = LruHashMap::new(0);
        map.update_elem(1, 1);
        map.update_elem(2, 2);
        assert_eq!(map.len(), 1);
        assert!(map.contains(&2));
    }

    #[test]
    fn eviction_order_follows_access_pattern() {
        let map: LruHashMap<u32, u32> = LruHashMap::new(3);
        for k in 0..3 {
            map.update_elem(k, k);
        }
        // Access 0 and 2; inserting two new keys should evict 1 first, then 0.
        map.lookup_elem(&0);
        map.lookup_elem(&2);
        map.update_elem(10, 10);
        assert!(!map.contains(&1));
        map.update_elem(11, 11);
        assert!(!map.contains(&0));
        assert!(map.contains(&2));
        assert_eq!(map.evictions(), 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn size_never_exceeds_capacity_and_inserts_are_visible(
            capacity in 1usize..16,
            operations in proptest::collection::vec((0u32..64, 0u32..1000), 1..200),
        ) {
            let map: LruHashMap<u32, u32> = LruHashMap::new(capacity);
            for (key, value) in operations {
                map.update_elem(key, value);
                prop_assert!(map.len() <= capacity);
                prop_assert_eq!(map.lookup_elem(&key), Some(value));
            }
        }
    }
}
