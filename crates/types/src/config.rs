//! Cluster and platform configuration.
//!
//! The defaults reproduce the paper's testbed (§6.1): 64-core nodes, 192 GB
//! memory, 10 GbE NICs, a maximum service capacity of 20 model updates per
//! node, EWMA α = 0.7, leaf fan-in I = 2 and a 2-minute hierarchy re-plan
//! period.

use crate::codec::CodecKind;
use crate::fold::FoldPolicy;
use crate::time::SimDuration;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// When aggregation is triggered relative to update arrival (Fig. 1, §2.1, §5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AggregationTiming {
    /// Aggregate each update as soon as it arrives (LIFL's default, §5.4).
    #[default]
    Eager,
    /// Queue updates and aggregate them in a batch once the goal is reached.
    Lazy,
}

/// Bin-packing / load-balancing policy used to map model updates to nodes (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PlacementPolicy {
    /// Locality-aware BestFit bin-packing (LIFL's choice).
    #[default]
    BestFit,
    /// FirstFit: low search cost, not locality aware.
    FirstFit,
    /// WorstFit: spreads load, equivalent to Knative's "least connection" policy.
    WorstFit,
}

/// Static description of one worker node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Number of physical CPU cores.
    pub cores: u32,
    /// CPU clock in GHz (used to convert cycles to seconds).
    pub clock_ghz: f64,
    /// Physical memory in bytes.
    pub memory_bytes: u64,
    /// NIC line rate in gigabits per second.
    pub nic_gbps: f64,
    /// Maximum service capacity MC_i: the maximum number of model updates the
    /// node can aggregate simultaneously (computed offline, Appendix E).
    pub max_service_capacity: u32,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            cores: 64,
            clock_ghz: 2.8,
            memory_bytes: 192 * 1024 * 1024 * 1024,
            nic_gbps: 10.0,
            max_service_capacity: 20,
        }
    }
}

/// Static description of the aggregation cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker nodes available to run aggregators.
    pub aggregation_nodes: u32,
    /// Per-node configuration (homogeneous cluster, as in the paper's testbed).
    pub node: NodeConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            aggregation_nodes: 5,
            node: NodeConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// Total service capacity of the cluster (sum of MC_i).
    pub fn total_capacity(&self) -> u64 {
        self.aggregation_nodes as u64 * self.node.max_service_capacity as u64
    }
}

/// LIFL control-plane configuration (§5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiflConfig {
    /// EWMA smoothing coefficient α for the pending-queue estimate (§5.2).
    pub ewma_alpha: f64,
    /// Number of client model updates assigned to one leaf aggregator (I, §5.2).
    pub leaf_fan_in: u32,
    /// Period between hierarchy re-planning passes (§6.1: 2 minutes).
    pub replan_period: SimDuration,
    /// Placement / load-balancing policy (§5.1).
    pub placement: PlacementPolicy,
    /// Aggregation timing (§5.4).
    pub timing: AggregationTiming,
    /// Whether warm aggregator runtimes are opportunistically reused across levels (§5.3).
    pub reuse_runtimes: bool,
    /// Whether the per-node hierarchy is planned from the estimated queue length (§5.2).
    pub hierarchy_planning: bool,
    /// The model-update codec every update travels the data plane with.
    pub codec: CodecKind,
    /// How every aggregator folds the updates of one round ([`FoldPolicy`]):
    /// sample-weighted FedAvg (the default, bit-exact with the pre-policy
    /// path) or a robust coordinate-wise statistic.
    pub fold_policy: FoldPolicy,
    /// Number of parameter-vector shards the aggregation fold is split into.
    /// `1` folds sequentially (the seed behaviour); larger values let an
    /// aggregator fold a batch of pending updates across that many
    /// cache-sized partitions in parallel.
    pub aggregation_shards: u32,
    /// Cap on every *interior* aggregator's fan-in when planning a node's
    /// subtree (§5.2 plans two levels; with a cap, heavily loaded nodes grow
    /// middle levels instead of one wide middle — see
    /// [`Topology::for_load_capped`]). `0` (the default) leaves interior
    /// fan-ins uncapped, reproducing the paper's two-level plans bit-exactly.
    pub max_interior_fan_in: u32,
}

impl Default for LiflConfig {
    fn default() -> Self {
        LiflConfig {
            ewma_alpha: 0.7,
            leaf_fan_in: 2,
            replan_period: SimDuration::from_secs(120.0),
            placement: PlacementPolicy::BestFit,
            timing: AggregationTiming::Eager,
            reuse_runtimes: true,
            hierarchy_planning: true,
            codec: CodecKind::Identity,
            fold_policy: FoldPolicy::FedAvg,
            aggregation_shards: 1,
            max_interior_fan_in: 0,
        }
    }
}

impl LiflConfig {
    /// The ablation steps of Fig. 8: the baseline SL-H plus the cumulative
    /// addition of ① locality-aware placement, ② hierarchy planning,
    /// ③ aggregator reuse and ④ eager aggregation.
    pub fn ablation_steps() -> Vec<(String, LiflConfig)> {
        let mut config = LiflConfig {
            placement: PlacementPolicy::WorstFit,
            hierarchy_planning: false,
            reuse_runtimes: false,
            timing: AggregationTiming::Lazy,
            ..LiflConfig::default()
        };
        let mut steps = vec![("SL-H".to_string(), config.clone())];
        config.placement = PlacementPolicy::BestFit;
        steps.push(("+1".to_string(), config.clone()));
        config.hierarchy_planning = true;
        steps.push(("+1+2".to_string(), config.clone()));
        config.reuse_runtimes = true;
        steps.push(("+1+2+3".to_string(), config.clone()));
        config.timing = AggregationTiming::Eager;
        steps.push(("+1+2+3+4".to_string(), config));
        steps
    }

    /// The per-node aggregation tree this configuration plans for a load of
    /// `pending_updates` client updates (§5.2): the hierarchy planner and the
    /// simulated platform both size node subtrees through this one helper.
    /// With [`LiflConfig::max_interior_fan_in`] set, heavily loaded nodes
    /// grow deeper-than-two-level subtrees instead of one wide middle.
    pub fn node_topology(&self, pending_updates: usize) -> Topology {
        Topology::for_load_capped(
            pending_updates,
            self.leaf_fan_in as usize,
            self.max_interior_fan_in as usize,
        )
    }

    /// Validates configuration invariants.
    ///
    /// # Errors
    /// Returns an error string if α is outside `[0, 1]` or the leaf fan-in is zero.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.ewma_alpha) {
            return Err(format!(
                "ewma_alpha must be in [0,1], got {}",
                self.ewma_alpha
            ));
        }
        if self.leaf_fan_in == 0 {
            return Err("leaf_fan_in must be at least 1".to_string());
        }
        if self.replan_period.as_secs() <= 0.0 {
            return Err("replan_period must be positive".to_string());
        }
        if let CodecKind::TopK { permille } = self.codec {
            if permille == 0 || permille > 1000 {
                return Err(format!("TopK permille must be in 1..=1000, got {permille}"));
            }
        }
        self.fold_policy.validate()?;
        if self.aggregation_shards == 0 {
            return Err("aggregation_shards must be at least 1".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = LiflConfig::default();
        assert_eq!(cfg.ewma_alpha, 0.7);
        assert_eq!(cfg.leaf_fan_in, 2);
        assert_eq!(cfg.replan_period.as_secs(), 120.0);
        assert_eq!(cfg.placement, PlacementPolicy::BestFit);
        assert_eq!(cfg.timing, AggregationTiming::Eager);
        assert_eq!(cfg.codec, CodecKind::Identity);
        assert_eq!(cfg.fold_policy, FoldPolicy::FedAvg);
        assert_eq!(cfg.aggregation_shards, 1);
        let node = NodeConfig::default();
        assert_eq!(node.cores, 64);
        assert_eq!(node.max_service_capacity, 20);
        assert_eq!(ClusterConfig::default().total_capacity(), 100);
    }

    #[test]
    fn ablation_steps_are_cumulative() {
        let steps = LiflConfig::ablation_steps();
        assert_eq!(steps.len(), 5);
        assert_eq!(steps[0].1.placement, PlacementPolicy::WorstFit);
        assert_eq!(steps[1].1.placement, PlacementPolicy::BestFit);
        assert!(!steps[1].1.hierarchy_planning);
        assert!(steps[2].1.hierarchy_planning);
        assert!(!steps[2].1.reuse_runtimes);
        assert!(steps[3].1.reuse_runtimes);
        assert_eq!(steps[3].1.timing, AggregationTiming::Lazy);
        assert_eq!(steps[4].1.timing, AggregationTiming::Eager);
    }

    #[test]
    fn validation_catches_bad_alpha() {
        let mut cfg = LiflConfig {
            ewma_alpha: 1.5,
            ..LiflConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.ewma_alpha = 0.5;
        cfg.leaf_fan_in = 0;
        assert!(cfg.validate().is_err());
        cfg.leaf_fan_in = 2;
        assert!(cfg.validate().is_ok());
        cfg.codec = CodecKind::TopK { permille: 0 };
        assert!(cfg.validate().is_err());
        cfg.codec = CodecKind::TopK { permille: 50 };
        assert!(cfg.validate().is_ok());
        cfg.fold_policy = FoldPolicy::TrimmedMean { trim_permille: 500 };
        assert!(cfg.validate().is_err());
        cfg.fold_policy = FoldPolicy::TrimmedMean { trim_permille: 100 };
        assert!(cfg.validate().is_ok());
        cfg.aggregation_shards = 0;
        assert!(cfg.validate().is_err());
        cfg.aggregation_shards = 8;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn node_topology_respects_interior_cap() {
        let flat = LiflConfig::default();
        assert_eq!(flat.node_topology(20).levels(), 2);
        let capped = LiflConfig {
            max_interior_fan_in: 4,
            ..LiflConfig::default()
        };
        let deep = capped.node_topology(40);
        assert!(deep.levels() > 2, "capped heavy load grows middle levels");
        assert!(deep.fan_ins()[1..].iter().all(|f| *f <= 4));
        // Light loads are unaffected by the cap.
        assert_eq!(capped.node_topology(4), flat.node_topology(4));
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = LiflConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: LiflConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
