//! The update-codec tier: proves the quantized data plane equivalent to the
//! seed fold semantics where it must be (Identity bit-exactness), close
//! where it may drift (lossy codecs under error feedback), and cheaper where
//! it promises to be (wire and shared-memory byte counters shrink
//! monotonically Identity → Uniform8 → Uniform4) — all through the unified
//! `Session` API.

use lifl_core::platform::{LiflPlatform, RoundSpec};
use lifl_core::session::{Session, SessionBuilder, SessionReport, Update};
use lifl_fl::aggregate::{fedavg, CumulativeFedAvg, ModelUpdate};
use lifl_fl::DenseModel;
use lifl_types::{ClientId, ClusterConfig, CodecKind, LiflConfig, ModelKind, SimTime, Topology};

fn updates(n: usize, dim: usize) -> Vec<ModelUpdate> {
    (0..n)
        .map(|i| {
            let values: Vec<f32> = (0..dim)
                .map(|d| ((i * dim + d) % 97) as f32 * 0.021 - 1.0)
                .collect();
            ModelUpdate::from_client(
                ClientId::new(i as u64),
                DenseModel::from_vec(values),
                (i % 5 + 1) as u64,
            )
        })
        .collect()
}

fn session(codec: CodecKind, shards: usize) -> Session {
    SessionBuilder::new()
        .topology(Topology::two_level(4, 2))
        .codec(codec)
        .shards(shards)
        .build()
        .expect("session")
}

fn drive(codec: CodecKind, shards: usize, updates: &[ModelUpdate]) -> SessionReport {
    let mut session = session(codec, shards);
    session
        .ingest_all(updates.iter().cloned().map(Update::Dense))
        .expect("ingest");
    session.drive().expect("drive")
}

/// Acceptance: the `Identity` codec is bit-exact with the seed fold
/// semantics, end to end through gateway, shared memory and the threaded
/// two-level hierarchy. The reference is restated from first principles:
/// update *k* of a round feeds leaf `k % leaves`, each leaf folds its
/// arrivals in arrival order, and the top folds the leaves in leaf order —
/// the same cumulative FedAvg a flat accumulator computes.
#[test]
fn identity_codec_bit_exact_with_pre_codec_path() {
    let updates = updates(8, 64);
    let leaves = 4;
    let mut leaf_folds: Vec<CumulativeFedAvg> =
        (0..leaves).map(|_| CumulativeFedAvg::new(64)).collect();
    for (k, update) in updates.iter().enumerate() {
        leaf_folds[k % leaves].fold(update).expect("leaf fold");
    }
    let mut top = CumulativeFedAvg::new(64);
    for mut leaf in leaf_folds {
        let merged = leaf.finalize().expect("leaf finalize");
        top.fold(&merged).expect("top fold");
    }
    let reference = top.finalize().expect("top finalize");
    let session_report = drive(CodecKind::Identity, 1, &updates);
    assert_eq!(session_report.update.samples, reference.samples);
    for (a, b) in session_report
        .update
        .model
        .as_slice()
        .iter()
        .zip(reference.model.as_slice())
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "identity session diverged from the seed fold semantics: {a} vs {b}"
        );
    }
    // Nothing was stored compressed on the identity path, and every client
    // payload crossed the ingress dense: 8 updates × 64 f32 parameters.
    assert_eq!(session_report.store_stats.encoded_puts, 0);
    assert_eq!(session_report.ingress_wire_bytes, 8 * 64 * 4);
}

/// Every codec's end-to-end aggregate stays within its quantization error of
/// the exact flat FedAvg result.
#[test]
fn every_codec_aggregates_correctly() {
    let updates = updates(8, 64);
    let exact = fedavg(&updates).expect("flat fedavg");
    let max_abs = updates
        .iter()
        .flat_map(|u| u.model.as_slice())
        .fold(0.0f32, |a, v| a.max(v.abs()));
    for codec in CodecKind::ablation_set() {
        let report = drive(codec, 1, &updates);
        assert_eq!(report.update.samples, exact.samples, "{codec}");
        let tolerance = match codec {
            CodecKind::Identity => 1e-6,
            // Client + leaf quantization stages, one step each.
            CodecKind::Uniform8 => 3.0 * max_abs / 127.0,
            CodecKind::Uniform4 => 3.0 * max_abs / 7.0,
            // Top-k drops small coordinates outright; bound by the largest
            // magnitude a dropped coordinate can have.
            CodecKind::TopK { .. } => max_abs,
        };
        for (a, b) in report
            .update
            .model
            .as_slice()
            .iter()
            .zip(exact.model.as_slice())
        {
            assert!(
                (a - b).abs() <= tolerance,
                "{codec}: |{a} - {b}| > {tolerance}"
            );
        }
    }
}

/// Shared-memory byte counters shrink strictly and monotonically
/// Identity → Uniform8 → Uniform4, measured from the store's own accounting.
#[test]
fn shmem_bytes_shrink_monotonically_with_codec_strength() {
    let updates = updates(8, 256);
    let mut previous: Option<(CodecKind, u64, u64)> = None;
    for codec in [
        CodecKind::Identity,
        CodecKind::Uniform8,
        CodecKind::Uniform4,
    ] {
        let report = drive(codec, 1, &updates);
        // Nothing recycles in this run, so the peak is the real total
        // footprint every payload (client + intermediate) left in the store.
        let stored = report.store_stats.peak_bytes;
        let wire = report.ingress_wire_bytes;
        if let Some((prev_codec, prev_stored, prev_wire)) = previous {
            assert!(
                stored < prev_stored,
                "{codec} stored {stored} !< {prev_codec} stored {prev_stored}"
            );
            assert!(
                wire < prev_wire,
                "{codec} wire {wire} !< {prev_codec} wire {prev_wire}"
            );
        }
        previous = Some((codec, stored, wire));
    }
}

/// Acceptance: on the default workload the platform reports a >= 4x
/// bytes-on-wire reduction for Uniform8 vs Identity, and the counters keep
/// shrinking through Uniform4.
#[test]
fn platform_round_wire_bytes_shrink_at_least_4x_for_uniform8() {
    let spec = RoundSpec::simultaneous(ModelKind::ResNet152, 60, SimTime::ZERO);
    let mut bytes = Vec::new();
    for codec in [
        CodecKind::Identity,
        CodecKind::Uniform8,
        CodecKind::Uniform4,
    ] {
        let config = LiflConfig {
            codec,
            ..LiflConfig::default()
        };
        let mut platform = LiflPlatform::new(ClusterConfig::default(), config);
        let report = platform.run_round(&spec);
        assert_eq!(report.metrics.updates_aggregated, 60, "{codec}");
        bytes.push(report.metrics.inter_node_bytes);
    }
    assert!(
        bytes[0] >= 4 * bytes[1],
        "uniform8 reduction only {:.3}x",
        bytes[0] as f64 / bytes[1] as f64
    );
    assert!(bytes[1] > bytes[2], "uniform4 must shrink below uniform8");
}

/// Acceptance: sharded batch draining (`aggregation_shards > 1`) is
/// bit-identical to the sequential eager fold through the whole threaded
/// hierarchy, for both the dense and the encoded data plane.
#[test]
fn sharded_hierarchy_is_bit_identical_to_sequential() {
    let updates = updates(8, 4096);
    for codec in [CodecKind::Identity, CodecKind::Uniform8] {
        let sequential = drive(codec, 1, &updates);
        for shards in [2usize, 4] {
            let sharded = drive(codec, shards, &updates);
            assert_eq!(sharded.update.samples, sequential.update.samples);
            for (a, b) in sharded
                .update
                .model
                .as_slice()
                .iter()
                .zip(sequential.update.model.as_slice())
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{codec} with {shards} shards diverged: {a} vs {b}"
                );
            }
        }
    }
}

/// The lossy codecs genuinely compress shared memory (the store's
/// dense-equivalent accounting versus real bytes).
#[test]
fn store_reports_real_savings_for_lossy_codecs() {
    let updates = updates(8, 512);
    for codec in [
        CodecKind::Uniform8,
        CodecKind::Uniform4,
        CodecKind::TopK { permille: 125 },
    ] {
        let report = drive(codec, 1, &updates);
        let stats = report.store_stats;
        assert!(stats.encoded_puts > 0, "{codec} stored nothing compressed");
        assert!(
            stats.bytes_saved() > 0,
            "{codec} saved no bytes: encoded {} vs dense {}",
            stats.encoded_bytes,
            stats.dense_equivalent_bytes
        );
    }
}
