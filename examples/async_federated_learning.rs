//! Asynchronous FL (Fig. 11 / future work): buffered async aggregation with
//! staleness-weighted FedAvg over a heterogeneous, hibernating client
//! population.
//!
//! Run with: `cargo run -p lifl-examples --example async_federated_learning`

use lifl_fl::async_driver::{AsyncDriverConfig, AsyncFlDriver};
use lifl_fl::client::ClientAvailability;
use lifl_fl::dataset::{DatasetConfig, FederatedDataset};
use lifl_fl::population::{Population, PopulationConfig};
use lifl_fl::staleness::StalenessPolicy;
use lifl_fl::trainer::TrainerConfig;
use lifl_simcore::SimRng;
use lifl_types::ModelKind;

fn main() {
    let mut rng = SimRng::from_seed(2024);
    let dataset = FederatedDataset::generate(
        DatasetConfig {
            num_clients: 80,
            num_features: 16,
            num_classes: 10,
            mean_samples_per_client: 50,
            dirichlet_alpha: 0.3,
            test_samples: 500,
            noise_std: 0.4,
        },
        &mut rng,
    );
    let population = Population::generate(
        PopulationConfig {
            total_clients: 80,
            active_per_round: 32,
            availability: ClientAvailability::Hibernating { max_secs: 45.0 },
            mean_samples: 50,
            speed_spread: 0.6,
        },
        &mut rng,
    );
    let config = AsyncDriverConfig {
        trainer: TrainerConfig {
            batch_size: 16,
            learning_rate: 0.05,
            local_epochs: 2,
        },
        buffer_goal: 16,
        target_versions: 12,
        concurrency: 32,
        staleness: StalenessPolicy::Polynomial { exponent: 0.5 },
        model: ModelKind::ResNet18,
        eval_every: 1,
        codec: lifl_types::CodecKind::Identity,
    };
    let mut driver = AsyncFlDriver::new(dataset, population, config).expect("valid config");
    println!("running buffered asynchronous FedAvg (goal = 16 updates per version)...");
    let versions = driver.run(&mut rng);
    println!("version  committed(s)  stale  mean-staleness  accuracy(%)");
    for v in &versions {
        println!(
            "{:>7}  {:>11.0}  {:>5}  {:>14.2}  {:>10.1}",
            v.version,
            v.committed_at.as_secs(),
            v.stale_updates,
            v.mean_staleness,
            v.accuracy.unwrap_or(0.0)
        );
    }
    let tracker = driver.staleness();
    println!(
        "\n{} updates accepted, {:.0}% of them stale (max staleness {}), final accuracy {:.1}%",
        tracker.count(),
        100.0 * tracker.stale_count() as f64 / tracker.count().max(1) as f64,
        tracker.max(),
        driver.evaluate()
    );
}
