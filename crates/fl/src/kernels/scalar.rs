//! Scalar reference implementations of every kernel.
//!
//! These functions *define* the semantics of the kernel layer: the AVX2 arms
//! in `super::avx2` must reproduce them bit-for-bit (asserted by the
//! proptests in the parent module), and `LIFL_FORCE_SCALAR=1` routes every
//! dispatch here at runtime. Keep them simple and obviously correct; the
//! parent module's docs explain which floating-point operations are safe to
//! vectorise without changing results.

/// `f32::from(nibble_to_i8(n))` for every sign-magnitude nibble, as a
/// branch-free table for the scalar dequantize kernels (index 8, "negative
/// zero", decodes to `0.0`). The AVX2 arm holds the same table in a register
/// and looks it up with an in-register byte shuffle.
pub(super) const NIBBLE_F32: [f32; 16] = [
    0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 0.0, -1.0, -2.0, -3.0, -4.0, -5.0, -6.0, -7.0,
];

/// Fused fold of a dense little-endian `f32` payload: `acc += weight * body`.
pub(super) fn fold_dense_le(acc: &mut [f32], body: &[u8], weight: f32) {
    for (a, c) in acc.iter_mut().zip(body.chunks_exact(4)) {
        *a += weight * f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
    }
}

/// Decode of a dense little-endian `f32` payload.
pub(super) fn decode_dense_le(out: &mut [f32], body: &[u8]) {
    for (o, c) in out.iter_mut().zip(body.chunks_exact(4)) {
        *o = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
    }
}

/// Fused fold of `Uniform8` levels: `acc[i] += f32(levels[i] as i8) * k`.
pub(super) fn fold_u8(acc: &mut [f32], levels: &[u8], k: f32) {
    for (a, b) in acc.iter_mut().zip(levels) {
        *a += f32::from(*b as i8) * k;
    }
}

/// Dequantize of `Uniform8` levels: `out[i] = f32(levels[i] as i8) * scale`.
pub(super) fn decode_u8(out: &mut [f32], levels: &[u8], scale: f32) {
    for (o, b) in out.iter_mut().zip(levels) {
        *o = f32::from(*b as i8) * scale;
    }
}

/// Fused fold of even-aligned packed `Uniform4` nibbles: element `j` of `acc`
/// is nibble `j` of `nibbles` (low nibble first within each byte).
pub(super) fn fold_u4_aligned(acc: &mut [f32], nibbles: &[u8], k: f32) {
    let n = acc.len();
    let mut j = 0usize;
    while j + 1 < n {
        let byte = nibbles[j / 2];
        acc[j] += NIBBLE_F32[(byte & 0x0F) as usize] * k;
        acc[j + 1] += NIBBLE_F32[(byte >> 4) as usize] * k;
        j += 2;
    }
    if j < n {
        acc[j] += NIBBLE_F32[(nibbles[j / 2] & 0x0F) as usize] * k;
    }
}

/// Dequantize of even-aligned packed `Uniform4` nibbles into `out`.
pub(super) fn decode_u4(out: &mut [f32], nibbles: &[u8], scale: f32) {
    let n = out.len();
    let mut j = 0usize;
    while j + 1 < n {
        let byte = nibbles[j / 2];
        out[j] = NIBBLE_F32[(byte & 0x0F) as usize] * scale;
        out[j + 1] = NIBBLE_F32[(byte >> 4) as usize] * scale;
        j += 2;
    }
    if j < n {
        out[j] = NIBBLE_F32[(nibbles[j / 2] & 0x0F) as usize] * scale;
    }
}

/// Fold of `TopK` `(index, value)` pairs restricted to `[start, end)`;
/// inherently a scatter, so both dispatch arms run this routine.
// lifl-lint: allow(kernel-parity) — index-driven scatter; AVX2 has no
// useful scatter, so the dispatcher routes both arms here by design.
pub(super) fn fold_topk(acc: &mut [f32], pairs: &[u8], start: usize, end: usize, weight: f32) {
    for pair in pairs.chunks_exact(8) {
        let index = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]) as usize;
        if index >= start && index < end {
            let value = f32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]);
            acc[index - start] += weight * value;
        }
    }
}

/// Decode of `TopK` `(index, value)` pairs into a zeroed `out`.
// lifl-lint: allow(kernel-parity) — index-driven scatter; AVX2 has no
// useful scatter, so the dispatcher routes both arms here by design.
pub(super) fn decode_topk(out: &mut [f32], pairs: &[u8]) {
    out.fill(0.0);
    for pair in pairs.chunks_exact(8) {
        let index = u32::from_le_bytes([pair[0], pair[1], pair[2], pair[3]]) as usize;
        if index < out.len() {
            let value = f32::from_le_bytes([pair[4], pair[5], pair[6], pair[7]]);
            out[index] = value;
        }
    }
}

/// `acc += w * src`, elementwise.
pub(super) fn axpy(acc: &mut [f32], src: &[f32], w: f32) {
    for (a, b) in acc.iter_mut().zip(src) {
        *a += w * b;
    }
}

/// Four-source fold with one accumulator load/store per element; the adds
/// chain serially in source order, bit-identical to four sequential
/// [`axpy`] calls.
pub(super) fn axpy4(acc: &mut [f32], srcs: [&[f32]; 4], w: [f32; 4]) {
    for (i, a) in acc.iter_mut().enumerate() {
        let mut v = *a;
        v += w[0] * srcs[0][i];
        v += w[1] * srcs[1][i];
        v += w[2] * srcs[2][i];
        v += w[3] * srcs[3][i];
        *a = v;
    }
}

/// Eight-source variant of [`axpy4`] (same ordering guarantee).
pub(super) fn axpy8(acc: &mut [f32], srcs: [&[f32]; 8], w: [f32; 8]) {
    for (i, a) in acc.iter_mut().enumerate() {
        let mut v = *a;
        v += w[0] * srcs[0][i];
        v += w[1] * srcs[1][i];
        v += w[2] * srcs[2][i];
        v += w[3] * srcs[3][i];
        v += w[4] * srcs[4][i];
        v += w[5] * srcs[5][i];
        v += w[6] * srcs[6][i];
        v += w[7] * srcs[7][i];
        *a = v;
    }
}

/// Largest finite `|x|` in `params` (0 when there is none). Exact, so the
/// order max is taken in does not matter and the vector arm matches.
pub(super) fn max_abs_finite(params: &[f32]) -> f32 {
    params
        .iter()
        .filter(|v| v.is_finite())
        .fold(0.0f32, |acc, v| acc.max(v.abs()))
}

/// Stochastically rounds `v / scale` (as `v * inv`) to an integer level in
/// `[-levels, levels]` using the 24 high bits of the random word `w` as the
/// rounding threshold; non-finite values map to level 0. The exact operation
/// sequence here (multiply, floor, subtract, compare, add, min/max clamp,
/// truncating convert) is what the AVX2 arm mirrors instruction for
/// instruction — every step is exactly rounded, so the arms agree bitwise.
#[inline]
// lifl-lint: allow(kernel-parity) — per-element helper; its vector
// counterpart is the 8-lane `avx2::quantize8`, checked via encode_u8/u4.
pub(super) fn quantize_one(v: f32, inv: f32, levels: f32, w: u32) -> i32 {
    if !v.is_finite() {
        return 0;
    }
    let q = v * inv;
    let f = q.floor();
    let r = (w >> 8) as f32 * (1.0 / 16_777_216.0);
    let up = if r < q - f { 1.0 } else { 0.0 };
    (f + up).min(levels).max(-levels) as i32
}

/// `Uniform8` quantization of `params` into `out` (one byte per element),
/// drawing rounding bits from `rand` (one word per element).
pub(super) fn encode_u8(params: &[f32], inv: f32, levels: f32, rand: &[u32], out: &mut [u8]) {
    for ((o, v), w) in out.iter_mut().zip(params).zip(rand) {
        *o = quantize_one(*v, inv, levels, *w) as u8;
    }
}

/// Maps a quantized level in `[-7, 7]` to a sign-magnitude nibble.
#[inline]
// lifl-lint: allow(kernel-parity) — per-element helper; its vector
// counterpart is the 8-lane `avx2::nibble8`, checked via encode_u4.
pub(super) fn nibble(level: i32) -> u8 {
    let magnitude = level.unsigned_abs().min(7) as u8;
    if level < 0 {
        magnitude | 0x08
    } else {
        magnitude
    }
}

/// `Uniform4` quantization of `params` into packed nibbles (low nibble =
/// even element), drawing rounding bits from `rand` (one word per element).
pub(super) fn encode_u4(params: &[f32], inv: f32, levels: f32, rand: &[u32], out: &mut [u8]) {
    let n = params.len();
    for (j, o) in out.iter_mut().enumerate() {
        let e = 2 * j;
        let low = nibble(quantize_one(params[e], inv, levels, rand[e]));
        let high = if e + 1 < n {
            nibble(quantize_one(params[e + 1], inv, levels, rand[e + 1]))
        } else {
            0
        };
        *o = low | (high << 4);
    }
}
