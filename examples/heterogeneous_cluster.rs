//! Heterogeneous worker fleets (§6.1 footnote 6, Appendix E): per-node MC_i
//! varies, the selector's bin-packing respects it, and the hierarchy planner
//! sizes each node's aggregation subtree to the load it actually received.
//!
//! Run with: `cargo run -p lifl-examples --example heterogeneous_cluster`

use lifl_core::fleet::{estimate_max_capacity, NodeFleet};
use lifl_core::hierarchy::HierarchyPlan;
use lifl_core::selector::{SelectorConfig, SelectorService};
use lifl_fl::client::ClientAvailability;
use lifl_fl::population::{Population, PopulationConfig};
use lifl_simcore::SimRng;
use lifl_types::{NodeConfig, SimDuration};

fn main() {
    // Three node classes: one big 64-core node and two smaller 16-core nodes.
    // MC_i is estimated offline from per-update execution time and core count
    // (Appendix E), instead of assuming the paper's homogeneous MC = 20.
    let base_exec = SimDuration::from_secs(0.5);
    let nodes: Vec<NodeConfig> = [(64u32, 2.8), (16, 2.4), (16, 2.4)]
        .iter()
        .map(|&(cores, clock)| NodeConfig {
            cores,
            clock_ghz: clock,
            max_service_capacity: estimate_max_capacity(base_exec, cores, 1.5),
            ..NodeConfig::default()
        })
        .collect();
    for (i, node) in nodes.iter().enumerate() {
        println!(
            "node-{i}: {} cores -> estimated MC_i = {}",
            node.cores, node.max_service_capacity
        );
    }
    let fleet = NodeFleet::heterogeneous(nodes).expect("valid fleet");
    println!(
        "fleet: {} nodes, total service capacity {}\n",
        fleet.len(),
        fleet.total_capacity()
    );

    // Select a round's clients and map them onto the fleet's gateways.
    let mut rng = SimRng::from_seed(17);
    let population = Population::generate(
        PopulationConfig {
            total_clients: 500,
            active_per_round: 100,
            availability: ClientAvailability::Hibernating { max_secs: 60.0 },
            mean_samples: 80,
            speed_spread: 0.5,
        },
        &mut rng,
    );
    let selector = SelectorService::new(SelectorConfig {
        aggregation_goal: 100,
        expected_dropout: 0.1,
        ..SelectorConfig::default()
    })
    .expect("valid selector config");
    let assignment = selector.assign_round(population.clients(), &fleet, &mut rng);
    println!(
        "selected {} clients ({} over-provisioned, {} waiting for capacity)",
        assignment.selected(),
        assignment.over_provisioned,
        assignment.unassigned
    );
    for (node, pending) in &assignment.pending_per_node {
        let mc = fleet
            .node(*node)
            .expect("node in fleet")
            .max_service_capacity;
        println!("  {node}: {pending} updates queued (MC_i = {mc})");
    }

    // Plan each node's aggregation subtree from its pending load.
    let plan = HierarchyPlan::plan(&assignment.pending_per_node, 2);
    println!(
        "\nhierarchy plan ({} aggregators in total):",
        plan.total_aggregators()
    );
    for node in &plan.nodes {
        println!(
            "  {}: {} leaves{}{}",
            node.node,
            node.leaves(),
            if node.middle() { " + 1 middle" } else { "" },
            if Some(node.node) == plan.top_node {
                " + the top aggregator"
            } else {
                ""
            }
        );
    }
}
