//! The multi-round training-driver tier: one `TrainingDriver` loop runs over
//! either `Ingest` backend — a single-process `Session` or a federated
//! `Cluster` — with bit-exact results for every codec × shard count, and
//! live top placement re-places the global top between rounds without
//! touching the aggregate.

use lifl_core::cluster::{Cluster, ClusterBuilder, TopPlacement};
use lifl_core::session::{Session, SessionBuilder, Update};
use lifl_core::training::{TrainingConfig, TrainingDriver};
use lifl_fl::aggregate::ModelUpdate;
use lifl_fl::client::ClientAvailability;
use lifl_fl::dataset::{DatasetConfig, FederatedDataset};
use lifl_fl::population::{Population, PopulationConfig};
use lifl_fl::trainer::TrainerConfig;
use lifl_fl::{DenseModel, Ingest};
use lifl_simcore::SimRng;
use lifl_types::{ClientId, CodecKind, NodeId, Topology};

/// The global tree both backends aggregate over: 8 updates per round, split
/// by the cluster into 2 nodes of [2, 2] subtrees.
fn topology() -> Topology {
    Topology::new(vec![2, 2, 2]).expect("topology")
}

/// Regenerates the identical dataset + population + rng for a given seed, so
/// two driver runs consume identical randomness streams.
fn fixtures(seed: u64) -> (FederatedDataset, Population, SimRng) {
    let mut rng = SimRng::from_seed(seed);
    let dataset = FederatedDataset::generate(
        DatasetConfig {
            num_clients: 24,
            num_features: 12,
            num_classes: 6,
            mean_samples_per_client: 40,
            dirichlet_alpha: 0.5,
            test_samples: 300,
            noise_std: 0.4,
        },
        &mut rng,
    );
    let population = Population::generate(
        PopulationConfig {
            total_clients: 24,
            active_per_round: 8,
            availability: ClientAvailability::AlwaysOn,
            mean_samples: 40,
            speed_spread: 0.3,
        },
        &mut rng,
    );
    (dataset, population, rng)
}

fn session(codec: CodecKind, shards: usize) -> Session {
    SessionBuilder::new()
        .topology(topology())
        .codec(codec)
        .shards(shards)
        .build()
        .expect("session")
}

fn cluster(codec: CodecKind, shards: usize) -> Cluster {
    ClusterBuilder::new()
        .topology(topology())
        .codec(codec)
        .shards(shards)
        .build()
        .expect("cluster")
}

fn run_driver<B: Ingest>(backend: B, seed: u64, rounds: usize) -> TrainingDriver<B> {
    let (dataset, population, mut rng) = fixtures(seed);
    let mut driver = TrainingDriver::new(
        backend,
        dataset,
        population,
        TrainingConfig {
            trainer: TrainerConfig {
                batch_size: 16,
                learning_rate: 0.05,
                local_epochs: 2,
            },
            rounds,
            eval_every: 1,
            ..TrainingConfig::default()
        },
    );
    driver.run_all(&mut rng).expect("rounds drive");
    driver
}

/// Acceptance: the cluster-backed driver is **bit-exact** with the
/// session-backed driver — same global model bits, same loss curve, same
/// wire accounting — for every `CodecKind` × {1, 4} shards.
#[test]
fn cluster_driver_bit_exact_with_session_driver_for_every_codec_and_shards() {
    for codec in CodecKind::ablation_set() {
        for shards in [1usize, 4] {
            let over_session = run_driver(session(codec, shards), 42, 3);
            let over_cluster = run_driver(cluster(codec, shards), 42, 3);
            for (s, c) in over_session
                .history()
                .iter()
                .zip(over_cluster.history().iter())
            {
                assert_eq!(s.round, c.round);
                assert_eq!(s.updates, c.updates, "{codec}/{shards}");
                assert_eq!(
                    s.train_loss, c.train_loss,
                    "{codec}/{shards} round {}: identical local training \
                     must report identical loss",
                    s.round
                );
                assert_eq!(
                    s.ingress_wire_bytes, c.ingress_wire_bytes,
                    "{codec}/{shards} round {}",
                    s.round
                );
                assert_eq!(s.accuracy, c.accuracy, "{codec}/{shards} round {}", s.round);
            }
            for (a, b) in over_session
                .global_model()
                .as_slice()
                .iter()
                .zip(over_cluster.global_model().as_slice())
            {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{codec}/{shards}: cluster driver diverged: {a} vs {b}"
                );
            }
        }
    }
}

/// Acceptance: under a lossy codec the cluster driver's multi-round loss
/// curve is identical to the single-session driver's — error-feedback
/// residuals accumulate identically at both ingresses — and the model still
/// learns through the compressed federated path.
#[test]
fn lossy_cluster_driver_converges_identically_to_session_driver() {
    let rounds = 10;
    let over_session = run_driver(session(CodecKind::Uniform8, 1), 7, rounds);
    let over_cluster = run_driver(cluster(CodecKind::Uniform8, 1), 7, rounds);
    let session_curve: Vec<f64> = over_session
        .history()
        .iter()
        .map(|r| r.train_loss)
        .collect();
    let cluster_curve: Vec<f64> = over_cluster
        .history()
        .iter()
        .map(|r| r.train_loss)
        .collect();
    assert_eq!(session_curve, cluster_curve);
    assert_eq!(over_session.accuracy_curve(), over_cluster.accuracy_curve());
    // The curve is a real convergence curve, not a fixed point: late-round
    // training loss dips well below the first round's.
    let first = session_curve[0];
    let last = *session_curve.last().expect("nonempty curve");
    assert!(
        last < first * 0.8,
        "lossy driver should converge: {first} -> {last}"
    );
    let accuracy = over_cluster.accuracy_curve();
    assert!(
        accuracy.last().expect("evaluated").1 > accuracy.first().expect("evaluated").1 + 10.0,
        "cluster driver should learn through the lossy federated path"
    );
}

fn batch(n: usize, dim: usize, round: usize) -> Vec<ModelUpdate> {
    (0..n)
        .map(|i| {
            let values: Vec<f32> = (0..dim)
                .map(|d| ((i * dim + d * 7 + round * 13) % 101) as f32 * 0.03 - 1.5)
                .collect();
            ModelUpdate::from_client(
                ClientId::new(i as u64),
                DenseModel::from_vec(values),
                (i + 1) as u64,
            )
        })
        .collect()
}

/// Acceptance: a live top move between rounds is bit-exact with never
/// moving. Two identically seeded clusters ingest identical rounds; one is
/// pinned to node 0, the other re-places onto node 1 after an out-of-band
/// load report — every aggregate stays bit-identical, only the hop pricing
/// and the priced handoff differ.
#[test]
fn top_replacement_between_rounds_is_bit_exact_with_not_moving() {
    let codec = CodecKind::Uniform8; // lossy: residual state must survive the move
    let mut live = ClusterBuilder::new()
        .topology(topology())
        .codec(codec)
        .build()
        .unwrap();
    let mut pinned = ClusterBuilder::new()
        .topology(topology())
        .codec(codec)
        .placement(TopPlacement::Pinned(0))
        .build()
        .unwrap();
    for round in 0..3 {
        if round == 1 {
            // A deep pending queue reported for node 1 tips the EWMA: the
            // live cluster moves its top at the next round boundary.
            live.observe_node_load(NodeId::new(1), 64.0);
        }
        let updates = batch(8, 32, round);
        live.ingest_all(updates.iter().cloned().map(Update::Dense))
            .unwrap();
        pinned
            .ingest_all(updates.into_iter().map(Update::Dense))
            .unwrap();
        let live_report = live.drive().unwrap();
        let pinned_report = pinned.drive().unwrap();
        assert_eq!(live_report.update.samples, pinned_report.update.samples);
        for (a, b) in live_report
            .update
            .model
            .as_slice()
            .iter()
            .zip(pinned_report.update.model.as_slice())
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "round {round}: the top move changed the aggregate: {a} vs {b}"
            );
        }
        assert!(pinned_report.replacement.is_none());
        assert_eq!(pinned_report.top_node, NodeId::new(0));
        if round == 1 {
            let moved = live_report.replacement.as_ref().expect("top must move");
            assert_eq!(moved.from, NodeId::new(0));
            assert_eq!(moved.to, NodeId::new(1));
            // The handoff ships round 0's warm global intermediate and is
            // priced as a real cross-machine transfer.
            assert_eq!(moved.state_bytes, 32 * 4);
            assert!(moved.cost.latency > lifl_types::SimDuration::ZERO);
        } else {
            assert!(live_report.replacement.is_none(), "round {round}");
        }
        let expected_top = if round == 0 { 0 } else { 1 };
        assert_eq!(live_report.top_node, NodeId::new(expected_top as u64));
        // Hop pricing follows the live top: exactly the host's hop is local.
        for hop in &live_report.hops {
            assert_eq!(hop.same_node, hop.node == live_report.top_node);
        }
    }
    assert_eq!(live.top_node(), NodeId::new(1));
}
