//! Model-quality metrics.

use crate::dataset::Sample;
use crate::model::DenseModel;
use crate::trainer::LocalTrainer;

/// Top-1 accuracy (in percent) of `model` on `samples`.
pub fn accuracy_percent(trainer: &LocalTrainer, model: &DenseModel, samples: &[Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct = samples
        .iter()
        .filter(|s| {
            let probs = trainer.predict(model, &s.features);
            let predicted = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            predicted == s.label
        })
        .count();
    100.0 * correct as f64 / samples.len() as f64
}

/// Average cross-entropy loss of `model` on `samples`.
pub fn cross_entropy(trainer: &LocalTrainer, model: &DenseModel, samples: &[Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let total: f64 = samples
        .iter()
        .map(|s| {
            let probs = trainer.predict(model, &s.features);
            -(probs[s.label].max(1e-7) as f64).ln()
        })
        .sum();
    total / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::TrainerConfig;

    #[test]
    fn accuracy_of_empty_set_is_zero() {
        let trainer = LocalTrainer::new(2, 2, TrainerConfig::default());
        let model = DenseModel::zeros(trainer.model_dim());
        assert_eq!(accuracy_percent(&trainer, &model, &[]), 0.0);
        assert_eq!(cross_entropy(&trainer, &model, &[]), 0.0);
    }

    #[test]
    fn perfect_model_scores_100() {
        // Build a model that trivially separates two one-hot classes.
        let trainer = LocalTrainer::new(2, 2, TrainerConfig::default());
        // W = [[10,0],[0,10]], b = [0,0]
        let model = DenseModel::from_vec(vec![10.0, 0.0, 0.0, 10.0, 0.0, 0.0]);
        let samples = vec![
            Sample {
                features: vec![1.0, 0.0],
                label: 0,
            },
            Sample {
                features: vec![0.0, 1.0],
                label: 1,
            },
        ];
        assert_eq!(accuracy_percent(&trainer, &model, &samples), 100.0);
        assert!(cross_entropy(&trainer, &model, &samples) < 0.01);
    }
}
