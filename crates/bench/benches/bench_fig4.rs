//! Fig. 4: hierarchical aggregation on a kernel-networking data plane (NH vs WH).
use criterion::{criterion_group, criterion_main, Criterion};
use lifl_experiments::fig4;

fn bench(c: &mut Criterion) {
    let result = fig4::run();
    println!("{}", fig4::format(&result));
    let mut group = c.benchmark_group("fig4_hierarchy");
    group.sample_size(10);
    group.bench_function("nh_vs_wh", |b| b.iter(fig4::run));
    group.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
