//! In-place message queuing (§4.2, Appendix C/G).
//!
//! The gateway writes each model update into shared memory once and enqueues
//! only the 16-byte object key; aggregators dequeue keys and read the payload
//! in place. The queue is a multiple-producer / single-consumer FIFO matching
//! the step-based processing model of Appendix G.

use lifl_types::{ClientId, ObjectKey};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// One queued update: who produced it and where its payload lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueuedUpdate {
    /// The producing client (or `None` for an intermediate update from another aggregator).
    pub producer: Option<ClientId>,
    /// Key of the payload in the shared-memory object store.
    pub key: ObjectKey,
    /// Number of raw client updates folded into this payload (1 for a client update).
    pub weight: u64,
    /// Whether the payload is an `EncodedUpdate` wire string rather than a
    /// dense `f32` vector (the consumer must decode before folding).
    pub encoded: bool,
}

impl QueuedUpdate {
    /// A raw update from a client.
    pub fn from_client(client: ClientId, key: ObjectKey) -> Self {
        QueuedUpdate {
            producer: Some(client),
            key,
            weight: 1,
            encoded: false,
        }
    }

    /// An intermediate update produced by a lower-level aggregator.
    pub fn intermediate(key: ObjectKey, weight: u64) -> Self {
        QueuedUpdate {
            producer: None,
            key,
            weight,
            encoded: false,
        }
    }

    /// Marks the payload as codec-encoded wire bytes.
    pub fn encoded(mut self) -> Self {
        self.encoded = true;
        self
    }
}

#[derive(Debug, Default)]
struct QueueInner {
    fifo: VecDeque<QueuedUpdate>,
    total_enqueued: u64,
    total_dequeued: u64,
    peak_depth: usize,
}

/// The in-place FIFO queue of object keys shared by a gateway (producer side)
/// and one aggregator (consumer side).
#[derive(Debug, Clone, Default)]
pub struct InPlaceQueue {
    inner: Arc<Mutex<QueueInner>>,
}

impl InPlaceQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues an update key.
    pub fn enqueue(&self, update: QueuedUpdate) {
        let mut inner = self.inner.lock();
        inner.fifo.push_back(update);
        inner.total_enqueued += 1;
        inner.peak_depth = inner.peak_depth.max(inner.fifo.len());
    }

    /// Dequeues the oldest update key, if any.
    pub fn dequeue(&self) -> Option<QueuedUpdate> {
        let mut inner = self.inner.lock();
        let item = inner.fifo.pop_front();
        if item.is_some() {
            inner.total_dequeued += 1;
        }
        item
    }

    /// Removes and returns the first queued update matching `pred`,
    /// preserving the relative order of every other entry (so a departed
    /// client's key can be reclaimed mid-round without perturbing survivor
    /// assignment).
    pub fn remove_first(&self, pred: impl Fn(&QueuedUpdate) -> bool) -> Option<QueuedUpdate> {
        let mut inner = self.inner.lock();
        let pos = inner.fifo.iter().position(&pred)?;
        let item = inner.fifo.remove(pos);
        if item.is_some() {
            inner.total_dequeued += 1;
        }
        item
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.lock().fifo.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().fifo.is_empty()
    }

    /// Highest depth the queue ever reached.
    pub fn peak_depth(&self) -> usize {
        self.inner.lock().peak_depth
    }

    /// Total updates enqueued over the queue's lifetime.
    pub fn total_enqueued(&self) -> u64 {
        self.inner.lock().total_enqueued
    }

    /// Total updates dequeued over the queue's lifetime.
    pub fn total_dequeued(&self) -> u64 {
        self.inner.lock().total_dequeued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> ObjectKey {
        ObjectKey::from_words(0, i)
    }

    #[test]
    fn fifo_order() {
        let q = InPlaceQueue::new();
        for i in 0..5 {
            q.enqueue(QueuedUpdate::from_client(ClientId::new(i), key(i)));
        }
        for i in 0..5 {
            let u = q.dequeue().unwrap();
            assert_eq!(u.producer, Some(ClientId::new(i)));
            assert_eq!(u.key, key(i));
            assert_eq!(u.weight, 1);
        }
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn counters_track_flow() {
        let q = InPlaceQueue::new();
        q.enqueue(QueuedUpdate::intermediate(key(1), 4));
        q.enqueue(QueuedUpdate::intermediate(key(2), 2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peak_depth(), 2);
        let first = q.dequeue().unwrap();
        assert_eq!(first.weight, 4);
        assert!(first.producer.is_none());
        assert_eq!(q.total_enqueued(), 2);
        assert_eq!(q.total_dequeued(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn shared_between_producer_and_consumer() {
        let q = InPlaceQueue::new();
        let producer = q.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                producer.enqueue(QueuedUpdate::from_client(ClientId::new(i), key(i)));
            }
        });
        handle.join().unwrap();
        let mut seen = 0;
        while q.dequeue().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 100);
    }
}
