//! Regenerates the asynchronous-FL experiment (Fig. 11 semantics + staleness policies).
fn main() {
    let result = lifl_experiments::fig11_async::run();
    println!("{}", lifl_experiments::fig11_async::format(&result));
    println!("{}", lifl_experiments::report::to_json(&result));
}
