//! The persisted aggregation-path benchmark baseline.
//!
//! Criterion's output is ephemeral, so until now no PR could *prove* a
//! speedup against its predecessor. This module measures the aggregation hot
//! path — dense fold, decode-then-fold, fused decode-fold, in-place decode,
//! codec encode, and sequential-versus-sharded batch folding — at the
//! ResNet-18/34/152 parameter counts and produces a schema-versioned JSON
//! report (`BENCH_aggregation.json` at the repo root) that is committed, so
//! this and every future perf PR has a before/after record.
//!
//! Regenerate with `just bench-baseline`; CI runs the `--quick` mode and
//! validates the committed file's schema (`just bench-baseline-check`).

use lifl_fl::aggregate::{CumulativeFedAvg, ModelUpdate};
use lifl_fl::codec::UpdateCodec;
use lifl_fl::sharded::ShardedFedAvg;
use lifl_fl::DenseModel;
use lifl_types::{ClientId, CodecKind, ModelKind};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema tag of the persisted report; bump when entry names or fields
/// change so CI flags a stale committed baseline. v2 added the
/// `encode/uniform4`, `encode/topk50` and `decode_into/uniform4` entries
/// alongside the SIMD kernel layer.
pub const SCHEMA: &str = "lifl.bench.aggregation/v2";

/// Updates per batch in the sequential-versus-sharded comparison.
pub const BATCH_UPDATES: usize = 8;

/// Shard counts the sharded fold is measured at.
pub const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

/// One measured benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Stable benchmark name, e.g. `fused_fold/uniform8`.
    pub name: String,
    /// Workload model label, e.g. `ResNet-18`.
    pub model: String,
    /// Parameter count of the workload model.
    pub params: u64,
    /// Timed iterations the median is taken over.
    pub iters: u64,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: u64,
    /// Dense-equivalent payload bytes processed per iteration (`4 * params`
    /// per update touched), the common denominator across representations.
    pub bytes_per_iter: u64,
    /// Derived throughput in (dense-equivalent) GB/s.
    pub gb_per_s: f64,
}

/// A named before/after ratio derived from two entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DerivedRatio {
    /// Stable ratio name.
    pub name: String,
    /// Speedup factor (>1 means the optimised path is faster).
    pub ratio: f64,
}

/// The whole persisted report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineReport {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// `"full"` or `"quick"`.
    pub mode: String,
    /// Updates per batch in the batch-fold benchmarks.
    pub batch_updates: u64,
    /// Every measured benchmark.
    pub entries: Vec<BenchEntry>,
    /// Headline speedups (fused vs decode-then-fold, sharded vs sequential).
    pub derived: Vec<DerivedRatio>,
}

impl BaselineReport {
    /// Looks up an entry's median by `(name, model)`.
    pub fn median_ns(&self, name: &str, model: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.name == name && e.model == model)
            .map(|e| e.median_ns)
    }

    /// Looks up a derived ratio by name.
    pub fn ratio(&self, name: &str) -> Option<f64> {
        self.derived
            .iter()
            .find(|d| d.name == name)
            .map(|d| d.ratio)
    }
}

/// The stable benchmark names every report must contain (per model). The
/// sharded entries are derived from [`SHARD_COUNTS`] so the generator and
/// the CI validator cannot drift apart.
pub fn required_entry_names() -> Vec<String> {
    let mut names: Vec<String> = [
        "fold_dense",
        "decode_then_fold/uniform8",
        "fused_fold/uniform8",
        "fused_fold/uniform4",
        "fused_fold/topk50",
        "decode_into/uniform8",
        "decode_into/uniform4",
        "encode/uniform8",
        "encode/uniform4",
        "encode/topk50",
        "sequential_batch_fold",
    ]
    .iter()
    .map(|n| n.to_string())
    .collect();
    names.extend(SHARD_COUNTS.iter().map(|s| format!("sharded_fold/{s}")));
    names
}

/// The derived-ratio names every report must contain.
pub fn required_ratio_names() -> Vec<&'static str> {
    vec![
        "fused_over_decode_then_fold_uniform8_resnet18",
        "fused_over_decode_then_fold_uniform8_resnet152",
        "sharded4_over_sequential_resnet152",
        "sharded8_over_sequential_resnet152",
    ]
}

/// Validates a serialized report: parseable, current schema, and carrying
/// every required entry and ratio for every workload model.
///
/// # Errors
/// Returns a human-readable description of the first problem found.
pub fn check_report(json: &str) -> Result<BaselineReport, String> {
    let report: BaselineReport =
        serde_json::from_str(json).map_err(|e| format!("unparseable baseline report: {e:?}"))?;
    if report.schema != SCHEMA {
        return Err(format!(
            "stale baseline schema {:?} (current is {SCHEMA:?}); regenerate with `just bench-baseline`",
            report.schema
        ));
    }
    for model in ModelKind::paper_models() {
        for name in required_entry_names() {
            if report.median_ns(&name, &model.to_string()).is_none() {
                return Err(format!("missing entry {name:?} for {model}"));
            }
        }
    }
    for name in required_ratio_names() {
        if report.ratio(name).is_none() {
            return Err(format!("missing derived ratio {name:?}"));
        }
    }
    Ok(report)
}

/// Median wall-clock nanoseconds of `iters` runs of `op` (after one untimed
/// warm-up run).
fn median_ns_of(iters: u64, mut op: impl FnMut()) -> u64 {
    op();
    let mut samples: Vec<u64> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            op();
            start.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2].max(1)
}

/// Deterministic pseudo-update for benchmarking (values in roughly ±1).
fn bench_update(dim: usize, salt: usize) -> Vec<f32> {
    (0..dim)
        .map(|d| (((d * 31 + salt * 17) % 251) as f32) * 0.008 - 1.0)
        .collect()
}

struct Recorder {
    entries: Vec<BenchEntry>,
    iters: u64,
}

impl Recorder {
    fn record(&mut self, name: &str, model: ModelKind, updates_touched: u64, op: impl FnMut()) {
        let median = median_ns_of(self.iters, op);
        let bytes = updates_touched * model.parameters() * 4;
        self.entries.push(BenchEntry {
            name: name.to_string(),
            model: model.to_string(),
            params: model.parameters(),
            iters: self.iters,
            median_ns: median,
            bytes_per_iter: bytes,
            gb_per_s: bytes as f64 / median as f64,
        });
        let last = self.entries.last().expect("just pushed");
        eprintln!(
            "  {:28} {:>12} ns/iter  {:>7.2} GB/s",
            format!("{}@{}", last.name, last.model),
            last.median_ns,
            last.gb_per_s
        );
    }
}

/// Runs the whole baseline suite. `quick` bounds iterations for CI smoke
/// coverage; the committed baseline should come from a full run.
pub fn run(quick: bool) -> BaselineReport {
    let iters = if quick { 2 } else { 11 };
    let mut rec = Recorder {
        entries: Vec::new(),
        iters,
    };
    for model in ModelKind::paper_models() {
        let dim = model.parameters() as usize;
        eprintln!("{model} ({dim} params):");
        let dense = DenseModel::from_vec(bench_update(dim, 0));
        let update = ModelUpdate::from_client(ClientId::new(0), dense.clone(), 3);
        let mut codec8 = UpdateCodec::new(CodecKind::Uniform8);
        let encoded8 = codec8.encode(&dense);
        let mut codec4 = UpdateCodec::new(CodecKind::Uniform4);
        let encoded4 = codec4.encode(&dense);
        let mut codec_topk = UpdateCodec::new(CodecKind::TopK { permille: 50 });
        let topk = codec_topk.encode(&dense);

        let mut acc = CumulativeFedAvg::new(dim);
        rec.record("fold_dense", model, 1, || {
            acc.fold(&update).expect("fold");
        });

        let mut acc = CumulativeFedAvg::new(dim);
        rec.record("decode_then_fold/uniform8", model, 1, || {
            // The pre-tentpole interior-aggregator path: materialise a dense
            // intermediate, then axpy it in.
            let decoded = encoded8.decode();
            acc.fold(&ModelUpdate::intermediate(decoded, 3))
                .expect("fold");
        });

        for (name, enc) in [
            ("fused_fold/uniform8", &encoded8),
            ("fused_fold/uniform4", &encoded4),
            ("fused_fold/topk50", &topk),
        ] {
            let mut acc = CumulativeFedAvg::new(dim);
            rec.record(name, model, 1, || {
                acc.fold_encoded(enc, 3).expect("fold_encoded");
            });
        }

        let mut scratch = vec![0.0f32; dim];
        rec.record("decode_into/uniform8", model, 1, || {
            encoded8.decode_into(&mut scratch).expect("decode_into");
        });
        rec.record("decode_into/uniform4", model, 1, || {
            encoded4.decode_into(&mut scratch).expect("decode_into");
        });

        rec.record("encode/uniform8", model, 1, || {
            let out = codec8.encode(&dense);
            codec8.recycle(out);
        });
        rec.record("encode/uniform4", model, 1, || {
            let out = codec4.encode(&dense);
            codec4.recycle(out);
        });
        rec.record("encode/topk50", model, 1, || {
            let out = codec_topk.encode(&dense);
            codec_topk.recycle(out);
        });

        let batch: Vec<ModelUpdate> = (0..BATCH_UPDATES)
            .map(|i| {
                ModelUpdate::from_client(
                    ClientId::new(i as u64),
                    DenseModel::from_vec(bench_update(dim, i + 1)),
                    (i + 1) as u64,
                )
            })
            .collect();
        let mut acc = CumulativeFedAvg::new(dim);
        rec.record("sequential_batch_fold", model, BATCH_UPDATES as u64, || {
            for u in &batch {
                acc.fold(u).expect("fold");
            }
        });
        for shards in SHARD_COUNTS {
            let mut sharded = ShardedFedAvg::new(dim, shards);
            rec.record(
                &format!("sharded_fold/{shards}"),
                model,
                BATCH_UPDATES as u64,
                || {
                    sharded.fold_batch(&batch).expect("fold_batch");
                },
            );
        }
    }

    let report_ns = |entries: &[BenchEntry], name: &str, model: ModelKind| -> f64 {
        entries
            .iter()
            .find(|e| e.name == name && e.model == model.to_string())
            .map(|e| e.median_ns as f64)
            .expect("entry recorded above")
    };
    let derived = vec![
        DerivedRatio {
            name: "fused_over_decode_then_fold_uniform8_resnet18".to_string(),
            ratio: report_ns(
                &rec.entries,
                "decode_then_fold/uniform8",
                ModelKind::ResNet18,
            ) / report_ns(&rec.entries, "fused_fold/uniform8", ModelKind::ResNet18),
        },
        DerivedRatio {
            name: "fused_over_decode_then_fold_uniform8_resnet152".to_string(),
            ratio: report_ns(
                &rec.entries,
                "decode_then_fold/uniform8",
                ModelKind::ResNet152,
            ) / report_ns(&rec.entries, "fused_fold/uniform8", ModelKind::ResNet152),
        },
        DerivedRatio {
            name: "sharded4_over_sequential_resnet152".to_string(),
            ratio: report_ns(&rec.entries, "sequential_batch_fold", ModelKind::ResNet152)
                / report_ns(&rec.entries, "sharded_fold/4", ModelKind::ResNet152),
        },
        DerivedRatio {
            name: "sharded8_over_sequential_resnet152".to_string(),
            ratio: report_ns(&rec.entries, "sequential_batch_fold", ModelKind::ResNet152)
                / report_ns(&rec.entries, "sharded_fold/8", ModelKind::ResNet152),
        },
    ];
    BaselineReport {
        schema: SCHEMA.to_string(),
        mode: if quick { "quick" } else { "full" }.to_string(),
        batch_updates: BATCH_UPDATES as u64,
        entries: rec.entries,
        derived,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> BaselineReport {
        // A structurally complete report with fabricated numbers, for schema
        // tests (running the real suite at ResNet dims is far too slow here).
        let mut entries = Vec::new();
        for model in ModelKind::paper_models() {
            for name in required_entry_names() {
                entries.push(BenchEntry {
                    name,
                    model: model.to_string(),
                    params: model.parameters(),
                    iters: 1,
                    median_ns: 100,
                    bytes_per_iter: model.parameters() * 4,
                    gb_per_s: 1.0,
                });
            }
        }
        BaselineReport {
            schema: SCHEMA.to_string(),
            mode: "quick".to_string(),
            batch_updates: BATCH_UPDATES as u64,
            entries,
            derived: required_ratio_names()
                .into_iter()
                .map(|name| DerivedRatio {
                    name: name.to_string(),
                    ratio: 2.0,
                })
                .collect(),
        }
    }

    #[test]
    fn report_roundtrips_and_passes_check() {
        let report = tiny_report();
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back = check_report(&json).expect("valid report");
        assert_eq!(back, report);
        assert_eq!(back.ratio("sharded4_over_sequential_resnet152"), Some(2.0));
        assert_eq!(back.median_ns("fold_dense", "ResNet-18"), Some(100));
    }

    #[test]
    fn stale_schema_is_rejected() {
        let mut report = tiny_report();
        report.schema = "lifl.bench.aggregation/v0".to_string();
        let json = serde_json::to_string(&report).unwrap();
        let err = check_report(&json).unwrap_err();
        assert!(err.contains("stale"), "{err}");
    }

    #[test]
    fn missing_entries_are_rejected() {
        let mut report = tiny_report();
        report.entries.retain(|e| e.name != "sharded_fold/4");
        let json = serde_json::to_string(&report).unwrap();
        assert!(check_report(&json).is_err());
        let mut report = tiny_report();
        report.derived.clear();
        let json = serde_json::to_string(&report).unwrap();
        assert!(check_report(&json).is_err());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(check_report("not json").is_err());
    }

    #[test]
    fn median_is_order_insensitive_and_positive() {
        let mut calls = 0u64;
        let ns = median_ns_of(3, || calls += 1);
        assert!(ns >= 1);
        assert_eq!(calls, 4, "one warm-up plus three timed runs");
    }
}
