//! Kernel networking path model: protocol processing, copies and
//! user/kernel boundary crossings (§2.3, §4.1).

use lifl_types::{CpuCycles, SimDuration};

/// Cost model for one traversal of the kernel TCP/IP stack on one side
/// (either transmit or receive) for a payload of a given size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelNetModel {
    /// Latency per mebibyte of payload (protocol processing + copies), seconds.
    pub latency_per_mib: f64,
    /// Fixed per-message latency (syscall, interrupt, wakeup), seconds.
    pub latency_fixed: f64,
    /// CPU cycles per mebibyte (copy + checksum + segmentation).
    pub cycles_per_mib: f64,
    /// Fixed CPU cycles per message.
    pub cycles_fixed: f64,
}

impl Default for KernelNetModel {
    fn default() -> Self {
        // Calibrated so that one full serverful gRPC transfer (TX + RX + gRPC
        // serialization) lands at ~3x the LIFL shared-memory latency of
        // Fig. 7(a): ~2.3 s for a 232 MiB ResNet-152 update.
        KernelNetModel {
            latency_per_mib: 0.0036,
            latency_fixed: 0.002,
            cycles_per_mib: 14.0e6,
            cycles_fixed: 40.0e6,
        }
    }
}

impl KernelNetModel {
    /// Latency of one stack traversal for `bytes` of payload.
    pub fn latency(&self, bytes: u64) -> SimDuration {
        let mib = bytes as f64 / (1024.0 * 1024.0);
        SimDuration::from_secs(self.latency_fixed + self.latency_per_mib * mib)
    }

    /// CPU cycles of one stack traversal for `bytes` of payload.
    pub fn cpu(&self, bytes: u64) -> CpuCycles {
        let mib = bytes as f64 / (1024.0 * 1024.0);
        CpuCycles(self.cycles_fixed + self.cycles_per_mib * mib)
    }

    /// Bytes buffered in kernel memory during the traversal (one copy of the payload).
    pub fn buffered_bytes(&self, bytes: u64) -> u64 {
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_scales_with_size() {
        let m = KernelNetModel::default();
        let small = m.latency(44 * 1024 * 1024);
        let large = m.latency(232 * 1024 * 1024);
        assert!(large > small);
        assert!(large.as_secs() < 1.5, "single traversal stays below 1.5s");
    }

    #[test]
    fn cpu_has_fixed_component() {
        let m = KernelNetModel::default();
        assert!(m.cpu(0).0 > 0.0);
        assert!(m.cpu(1024 * 1024).0 > m.cpu(0).0);
    }

    #[test]
    fn buffers_one_copy() {
        let m = KernelNetModel::default();
        assert_eq!(m.buffered_bytes(1000), 1000);
    }
}
