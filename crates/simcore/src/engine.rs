//! A small generic discrete-event engine.
//!
//! The LIFL platform and the baseline drivers each run their own specialised
//! event loops; this engine is the generic form used when an experiment needs
//! to interleave independently scheduled activities (client arrivals,
//! re-planning ticks, metric-scrape periods) without writing a bespoke loop:
//! events are closures scheduled at absolute simulated times, handlers may
//! schedule further events, and the engine runs until the queue drains or a
//! time horizon is reached.

use crate::event::EventQueue;
use lifl_types::{SimDuration, SimTime};

/// A scheduled activity: receives the scheduler so it can enqueue more work.
pub type EventHandler<S> = Box<dyn FnOnce(&mut Scheduler<S>, &mut S)>;

/// The scheduling face of the engine, passed to every handler.
pub struct Scheduler<S> {
    queue: EventQueue<EventHandler<S>>,
    now: SimTime,
    executed: u64,
}

impl<S> Scheduler<S> {
    fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            executed: 0,
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Schedules `handler` at the absolute time `at`. Events scheduled in the
    /// past run at the current time instead (time never goes backwards).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        handler: impl FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    ) {
        let at = at.max(self.now);
        self.queue.push(at, Box::new(handler));
    }

    /// Schedules `handler` after a delay from the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        handler: impl FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    ) {
        let at = self.now + delay;
        self.schedule_at(at, handler);
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// The discrete-event engine: owns the shared state `S` and drives handlers.
pub struct Engine<S> {
    scheduler: Scheduler<S>,
    state: S,
}

impl<S> Engine<S> {
    /// Creates an engine over the shared state.
    pub fn new(state: S) -> Self {
        Engine {
            scheduler: Scheduler::new(),
            state,
        }
    }

    /// Access to the shared state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Mutable access to the shared state (between runs).
    pub fn state_mut(&mut self) -> &mut S {
        &mut self.state
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.scheduler.now()
    }

    /// Schedules an initial event (same contract as [`Scheduler::schedule_at`]).
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        handler: impl FnOnce(&mut Scheduler<S>, &mut S) + 'static,
    ) {
        self.scheduler.schedule_at(at, handler);
    }

    /// Runs events in time order until the queue is empty or `horizon` is
    /// passed (events scheduled beyond the horizon stay in the queue).
    /// Returns the number of events executed by this call.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let before = self.scheduler.executed;
        while let Some(at) = self.scheduler.queue.peek_time() {
            if at.as_secs() > horizon.as_secs() {
                break;
            }
            let (at, handler) = self.scheduler.queue.pop().expect("peeked event exists");
            self.scheduler.now = at;
            self.scheduler.executed += 1;
            handler(&mut self.scheduler, &mut self.state);
        }
        self.scheduler.executed - before
    }

    /// Runs until the event queue drains completely. Returns the number of
    /// events executed by this call.
    pub fn run_to_completion(&mut self) -> u64 {
        self.run_until(SimTime::from_secs(f64::MAX))
    }

    /// Consumes the engine and returns the final state.
    pub fn into_state(self) -> S {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order_and_update_state() {
        let mut engine: Engine<Vec<(f64, &'static str)>> = Engine::new(Vec::new());
        engine.schedule_at(SimTime::from_secs(5.0), |_, log| log.push((5.0, "late")));
        engine.schedule_at(SimTime::from_secs(1.0), |_, log| log.push((1.0, "early")));
        engine.schedule_at(SimTime::from_secs(3.0), |_, log| log.push((3.0, "middle")));
        let executed = engine.run_to_completion();
        assert_eq!(executed, 3);
        let labels: Vec<&str> = engine.state().iter().map(|(_, l)| *l).collect();
        assert_eq!(labels, vec!["early", "middle", "late"]);
        assert_eq!(engine.now(), SimTime::from_secs(5.0));
    }

    #[test]
    fn handlers_can_schedule_follow_up_events() {
        // A periodic re-planning tick that reschedules itself 4 times.
        struct Counter {
            ticks: u32,
        }
        fn tick(scheduler: &mut Scheduler<Counter>, state: &mut Counter) {
            state.ticks += 1;
            if state.ticks < 5 {
                scheduler.schedule_in(SimDuration::from_secs(120.0), tick);
            }
        }
        let mut engine = Engine::new(Counter { ticks: 0 });
        engine.schedule_at(SimTime::ZERO, tick);
        engine.run_to_completion();
        assert_eq!(engine.state().ticks, 5);
        assert_eq!(engine.now(), SimTime::from_secs(480.0));
    }

    #[test]
    fn run_until_respects_the_horizon() {
        let mut engine: Engine<u32> = Engine::new(0);
        for i in 1..=10u32 {
            engine.schedule_at(SimTime::from_secs(i as f64 * 10.0), move |_, count| {
                *count += 1
            });
        }
        let first = engine.run_until(SimTime::from_secs(35.0));
        assert_eq!(first, 3);
        assert_eq!(*engine.state(), 3);
        // The remaining events are still pending and run on the next call.
        let rest = engine.run_to_completion();
        assert_eq!(rest, 7);
        assert_eq!(engine.into_state(), 10);
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut engine: Engine<Vec<f64>> = Engine::new(Vec::new());
        engine.schedule_at(SimTime::from_secs(10.0), |scheduler, log| {
            log.push(scheduler.now().as_secs());
            // Scheduling "in the past" runs at the current time, not before it.
            scheduler.schedule_at(SimTime::from_secs(2.0), |scheduler, log| {
                log.push(scheduler.now().as_secs());
            });
        });
        engine.run_to_completion();
        assert_eq!(engine.state(), &vec![10.0, 10.0]);
    }
}
