//! # lifl-ebpf
//!
//! An in-process emulation of the eBPF substrate LIFL relies on (§4.3, §4.4,
//! Appendix A):
//!
//! * [`map::BpfMap`] — a generic, in-kernel-style key/value map
//!   (`BPF_MAP_TYPE_HASH` semantics: bounded capacity, update/lookup/delete).
//! * [`sockmap::SockMap`] — the special map holding references to registered
//!   socket interfaces, used to steer an SKMSG from a source aggregator to the
//!   destination aggregator's socket without leaving the node.
//! * [`skmsg::SkMsgHook`] — the `send()`-triggered hook to which sidecar
//!   programs attach; it is strictly event driven and consumes CPU only when a
//!   message is sent, which is the property that lets LIFL drop the
//!   container-based sidecar.
//! * [`sidecar::EbpfSidecar`] — the metrics-collection program LIFL attaches
//!   to every aggregator socket, writing into a [`metrics_map::MetricsMap`]
//!   that the LIFL agent periodically drains toward the metric server.
//!
//! The emulation reproduces the *semantics* and the *accounting* (per-event
//! CPU cost, zero idle cost) of the kernel features; it does not load real BPF
//! bytecode — see DESIGN.md §1 for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array_map;
pub mod lru_map;
pub mod map;
pub mod metrics_map;
pub mod prog;
pub mod ringbuf;
pub mod sidecar;
pub mod skmsg;
pub mod sockmap;

pub use array_map::{ArrayMap, PerCpuArrayMap};
pub use lru_map::LruHashMap;
pub use map::BpfMap;
pub use metrics_map::{MetricSample, MetricsMap};
pub use prog::{AttachPoint, ProgramId, ProgramInfo, ProgramRegistry, ProgramStats, ProgramType};
pub use ringbuf::{RingBuffer, RingRecord};
pub use sidecar::EbpfSidecar;
pub use skmsg::{SkMsg, SkMsgHook, SkMsgVerdict};
pub use sockmap::{SockMap, SocketRef};
