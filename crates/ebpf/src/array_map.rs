//! Array-style BPF maps (`BPF_MAP_TYPE_ARRAY` / `BPF_MAP_TYPE_PERCPU_ARRAY`).
//!
//! LIFL's sidecar keeps most state in hash maps, but counters that are hot on
//! the send path (per-aggregator byte/update counters) are naturally array
//! maps indexed by a small dense id. Array maps have kernel semantics that
//! differ from hash maps in ways the emulation preserves:
//!
//! * every slot exists from creation time (initialised to the default value);
//! * lookups of an in-range index never fail and out-of-range indices are
//!   rejected rather than created;
//! * entries can be overwritten but never deleted.
//!
//! The per-CPU variant keeps one value per (virtual) CPU so concurrent
//! updates never contend, and user space reads the per-CPU values summed —
//! exactly how per-CPU counters are consumed by real agents.

use parking_lot::RwLock;
use std::sync::Arc;

/// An emulated `BPF_MAP_TYPE_ARRAY`.
#[derive(Debug, Clone)]
pub struct ArrayMap<V> {
    slots: Arc<RwLock<Vec<V>>>,
}

impl<V: Clone + Default> ArrayMap<V> {
    /// Creates an array map with `max_entries` slots initialised to `V::default()`.
    pub fn new(max_entries: usize) -> Self {
        ArrayMap {
            slots: Arc::new(RwLock::new(vec![V::default(); max_entries])),
        }
    }

    /// Number of slots (fixed at creation).
    pub fn max_entries(&self) -> usize {
        self.slots.read().len()
    }

    /// Writes `value` into `index`, mirroring `bpf_map_update_elem`.
    /// Returns `false` for an out-of-range index (the kernel's `E2BIG`).
    pub fn update_elem(&self, index: usize, value: V) -> bool {
        let mut slots = self.slots.write();
        match slots.get_mut(index) {
            Some(slot) => {
                *slot = value;
                true
            }
            None => false,
        }
    }

    /// Reads the value at `index`; `None` only for out-of-range indices.
    pub fn lookup_elem(&self, index: usize) -> Option<V> {
        self.slots.read().get(index).cloned()
    }

    /// Applies a read-modify-write to the slot at `index` (the emulation's
    /// stand-in for the atomic add BPF programs use on counters).
    /// Returns `false` for out-of-range indices.
    pub fn modify_elem(&self, index: usize, f: impl FnOnce(&mut V)) -> bool {
        let mut slots = self.slots.write();
        match slots.get_mut(index) {
            Some(slot) => {
                f(slot);
                true
            }
            None => false,
        }
    }

    /// A snapshot of every slot, in index order.
    pub fn snapshot(&self) -> Vec<V> {
        self.slots.read().clone()
    }
}

/// An emulated `BPF_MAP_TYPE_PERCPU_ARRAY`: one value per CPU per slot.
#[derive(Debug, Clone)]
pub struct PerCpuArrayMap<V> {
    per_cpu: Arc<RwLock<Vec<Vec<V>>>>,
}

impl<V: Clone + Default> PerCpuArrayMap<V> {
    /// Creates a per-CPU array map with `max_entries` slots across `cpus` CPUs.
    pub fn new(max_entries: usize, cpus: usize) -> Self {
        PerCpuArrayMap {
            per_cpu: Arc::new(RwLock::new(vec![
                vec![V::default(); max_entries];
                cpus.max(1)
            ])),
        }
    }

    /// Number of CPUs the map spans.
    pub fn cpus(&self) -> usize {
        self.per_cpu.read().len()
    }

    /// Number of slots per CPU.
    pub fn max_entries(&self) -> usize {
        self.per_cpu.read().first().map(|v| v.len()).unwrap_or(0)
    }

    /// Applies a read-modify-write to `index` on `cpu`'s private copy.
    /// Returns `false` when the CPU or index is out of range.
    pub fn modify_on_cpu(&self, cpu: usize, index: usize, f: impl FnOnce(&mut V)) -> bool {
        let mut per_cpu = self.per_cpu.write();
        match per_cpu.get_mut(cpu).and_then(|slots| slots.get_mut(index)) {
            Some(slot) => {
                f(slot);
                true
            }
            None => false,
        }
    }

    /// Reads the per-CPU values of `index`, one entry per CPU
    /// (what `bpf_map_lookup_elem` returns to user space for per-CPU maps).
    pub fn lookup_elem(&self, index: usize) -> Option<Vec<V>> {
        let per_cpu = self.per_cpu.read();
        if index >= per_cpu.first().map(|v| v.len()).unwrap_or(0) {
            return None;
        }
        Some(per_cpu.iter().map(|slots| slots[index].clone()).collect())
    }
}

impl PerCpuArrayMap<u64> {
    /// Sums the per-CPU values of a counter slot, as user-space agents do.
    pub fn sum(&self, index: usize) -> Option<u64> {
        self.lookup_elem(index).map(|values| values.iter().sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_exist_from_creation() {
        let map: ArrayMap<u64> = ArrayMap::new(4);
        assert_eq!(map.max_entries(), 4);
        for i in 0..4 {
            assert_eq!(map.lookup_elem(i), Some(0));
        }
        assert_eq!(map.lookup_elem(4), None);
    }

    #[test]
    fn update_and_modify_in_range_only() {
        let map: ArrayMap<u64> = ArrayMap::new(2);
        assert!(map.update_elem(0, 7));
        assert!(!map.update_elem(2, 9));
        assert!(map.modify_elem(1, |v| *v += 5));
        assert!(map.modify_elem(1, |v| *v += 5));
        assert!(!map.modify_elem(9, |v| *v += 1));
        assert_eq!(map.snapshot(), vec![7, 10]);
    }

    #[test]
    fn handles_are_shared_between_clones() {
        let map: ArrayMap<u32> = ArrayMap::new(1);
        let alias = map.clone();
        map.update_elem(0, 42);
        assert_eq!(alias.lookup_elem(0), Some(42));
    }

    #[test]
    fn per_cpu_updates_do_not_interfere() {
        let map: PerCpuArrayMap<u64> = PerCpuArrayMap::new(2, 4);
        assert_eq!(map.cpus(), 4);
        assert_eq!(map.max_entries(), 2);
        for cpu in 0..4 {
            assert!(map.modify_on_cpu(cpu, 0, |v| *v += (cpu + 1) as u64));
        }
        assert_eq!(map.lookup_elem(0), Some(vec![1, 2, 3, 4]));
        assert_eq!(map.sum(0), Some(10));
        assert_eq!(map.sum(1), Some(0));
        assert_eq!(map.sum(5), None);
        assert!(!map.modify_on_cpu(7, 0, |v| *v += 1));
    }

    #[test]
    fn zero_cpu_map_still_has_one_cpu() {
        let map: PerCpuArrayMap<u64> = PerCpuArrayMap::new(1, 0);
        assert_eq!(map.cpus(), 1);
        assert!(map.modify_on_cpu(0, 0, |v| *v = 3));
        assert_eq!(map.sum(0), Some(3));
    }
}
