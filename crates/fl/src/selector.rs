//! Client selection strategies for the coordinator/selector component (§2.2).
//!
//! The selector's first role is to "ensure that a diverse set of clients
//! participate in the FL process". Besides the uniform-random selection used
//! by the main experiments, this module provides two standard alternatives the
//! related-work section discusses: selection biased toward clients with more
//! data (an Oort-style statistical-utility proxy) and selection biased toward
//! faster clients (a deadline/straggler-avoidance proxy), so downstream users
//! can study the interaction between selection policy and LIFL's autoscaling.

use crate::client::Client;
use lifl_simcore::SimRng;
use lifl_types::ModelKind;

/// A client-selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Uniform random without replacement (the paper's default).
    UniformRandom,
    /// Weighted by local sample count (statistical-utility proxy).
    DataSizeWeighted,
    /// Prefer the fastest clients for the target model (straggler avoidance).
    FastestFirst,
}

/// Selects `count` clients from `pool` according to `strategy`.
///
/// Returns fewer clients when the pool is smaller than `count`; the result
/// never contains duplicates.
pub fn select_clients(
    strategy: SelectionStrategy,
    pool: &[Client],
    count: usize,
    model: ModelKind,
    rng: &mut SimRng,
) -> Vec<Client> {
    let count = count.min(pool.len());
    match strategy {
        SelectionStrategy::UniformRandom => {
            let mut indices: Vec<usize> = (0..pool.len()).collect();
            rng.shuffle(&mut indices);
            indices
                .into_iter()
                .take(count)
                .map(|i| pool[i].clone())
                .collect()
        }
        SelectionStrategy::DataSizeWeighted => {
            // Weighted sampling without replacement via the exponential-sort trick:
            // key = u^(1/w); take the largest keys.
            let mut keyed: Vec<(f64, usize)> = pool
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let w = c.local_samples.max(1) as f64;
                    let u = rng.uniform(1e-12, 1.0);
                    (u.powf(1.0 / w), i)
                })
                .collect();
            keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            keyed
                .into_iter()
                .take(count)
                .map(|(_, i)| pool[i].clone())
                .collect()
        }
        SelectionStrategy::FastestFirst => {
            let mut indexed: Vec<usize> = (0..pool.len()).collect();
            indexed.sort_by(|&a, &b| {
                pool[a]
                    .training_time(model)
                    .cmp(&pool[b].training_time(model))
            });
            indexed
                .into_iter()
                .take(count)
                .map(|i| pool[i].clone())
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientAvailability;
    use lifl_types::ClientId;

    fn pool(n: usize) -> Vec<Client> {
        (0..n)
            .map(|i| Client {
                id: ClientId::new(i as u64),
                compute_speed: 0.5 + (i % 7) as f64 * 0.25,
                local_samples: 10 + (i as u64 % 11) * 20,
                availability: ClientAvailability::AlwaysOn,
            })
            .collect()
    }

    #[test]
    fn all_strategies_return_unique_clients() {
        let pool = pool(50);
        let mut rng = SimRng::from_seed(1);
        for strategy in [
            SelectionStrategy::UniformRandom,
            SelectionStrategy::DataSizeWeighted,
            SelectionStrategy::FastestFirst,
        ] {
            let selected = select_clients(strategy, &pool, 20, ModelKind::ResNet18, &mut rng);
            assert_eq!(selected.len(), 20, "{strategy:?}");
            let mut ids: Vec<u64> = selected.iter().map(|c| c.id.index()).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 20, "{strategy:?} returned duplicates");
        }
    }

    #[test]
    fn fastest_first_picks_fastest() {
        let pool = pool(30);
        let mut rng = SimRng::from_seed(2);
        let selected = select_clients(
            SelectionStrategy::FastestFirst,
            &pool,
            5,
            ModelKind::ResNet18,
            &mut rng,
        );
        let max_selected = selected
            .iter()
            .map(|c| c.training_time(ModelKind::ResNet18))
            .max()
            .unwrap();
        let faster_than_cutoff = pool
            .iter()
            .filter(|c| c.training_time(ModelKind::ResNet18) < max_selected)
            .count();
        assert!(faster_than_cutoff <= 5);
    }

    #[test]
    fn data_weighted_prefers_large_clients_on_average() {
        let pool = pool(200);
        let mut rng = SimRng::from_seed(3);
        let mean = |clients: &[Client]| {
            clients.iter().map(|c| c.local_samples as f64).sum::<f64>() / clients.len() as f64
        };
        let mut weighted_total = 0.0;
        for _ in 0..20 {
            let sel = select_clients(
                SelectionStrategy::DataSizeWeighted,
                &pool,
                30,
                ModelKind::ResNet18,
                &mut rng,
            );
            weighted_total += mean(&sel);
        }
        assert!(
            weighted_total / 20.0 > mean(&pool),
            "weighted selection should skew large"
        );
    }

    #[test]
    fn selection_capped_by_pool_size() {
        let pool = pool(3);
        let mut rng = SimRng::from_seed(4);
        let selected = select_clients(
            SelectionStrategy::UniformRandom,
            &pool,
            10,
            ModelKind::ResNet18,
            &mut rng,
        );
        assert_eq!(selected.len(), 3);
    }
}
